package thermal

import (
	"math"
	"testing"

	"thermbal/internal/floorplan"
)

// singleNode builds the analytic benchmark network: one RC node to
// ambient with R=25 K/W, C=0.04 J/K (tau = 1 s).
func singleNode(t *testing.T) *Network {
	t.Helper()
	b := NewBuilder()
	b.AddNode("node", 0.04, 1/25.0)
	n, err := b.Build(25)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestParseScheme(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scheme
		ok   bool
	}{
		{"euler", Euler, true},
		{"", Euler, true},
		{"rk4", RK4, true},
		{"rk4-adaptive", RK4Adaptive, true},
		{"rk4a", RK4Adaptive, true},
		{"adaptive", RK4Adaptive, true},
		{"expm", Expm, true},
		{"exp", Expm, true},
		{"exact", Expm, true},
		{"simpson", Euler, false},
	} {
		got, err := ParseScheme(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseScheme(%q) err = %v", tc.in, err)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseScheme(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Round trip through String.
	for _, s := range []Scheme{Euler, RK4, RK4Adaptive, Expm} {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
}

func TestNewIntegratorNames(t *testing.T) {
	for _, s := range []Scheme{Euler, RK4, RK4Adaptive, Expm} {
		ig := NewIntegrator(Config{Scheme: s})
		if ig.Name() != s.String() {
			t.Errorf("NewIntegrator(%v).Name() = %q", s, ig.Name())
		}
	}
}

// The default integrator must be identical to an explicitly configured
// Euler: same trajectory to the last bit.
func TestDefaultIntegratorIsEulerBitForBit(t *testing.T) {
	n1 := singleNode(t)
	n2 := singleNode(t)
	n2.SetIntegrator(NewIntegrator(Config{}))
	if n1.Integrator().Name() != "euler" {
		t.Fatalf("default integrator = %q", n1.Integrator().Name())
	}
	p := []float64{0.5}
	for i := 0; i < 500; i++ {
		if err := n1.Step(0.01, p); err != nil {
			t.Fatal(err)
		}
		if err := n2.Step(0.01, p); err != nil {
			t.Fatal(err)
		}
		if n1.Temperature(0) != n2.Temperature(0) {
			t.Fatalf("step %d: default %v != explicit euler %v", i, n1.Temperature(0), n2.Temperature(0))
		}
	}
}

// RK4 must track the analytic single-node solution within 1e-6 °C when
// stepped at the 10 ms sensor period — both heating and cooling.
func TestRK4MatchesAnalyticWithin1e6(t *testing.T) {
	const (
		r, c, p, amb = 25.0, 0.04, 0.5, 25.0
		tau          = r * c // 1 s
		h            = 0.01  // sensor period
		tEnd         = 3.0
	)
	n := singleNode(t)
	n.SetIntegrator(NewIntegrator(Config{Scheme: RK4}))
	pw := []float64{p}
	for tm := h; tm <= tEnd+1e-9; tm += h {
		if err := n.Step(h, pw); err != nil {
			t.Fatal(err)
		}
		want := amb + p*r*(1-math.Exp(-tm/tau))
		if diff := math.Abs(n.Temperature(0) - want); diff > 1e-6 {
			t.Fatalf("heating t=%.2f: rk4 %.9f vs analytic %.9f (diff %.2e)", tm, n.Temperature(0), want, diff)
		}
	}
	start := n.Temperature(0)
	zero := []float64{0}
	for tm := h; tm <= tEnd+1e-9; tm += h {
		if err := n.Step(h, zero); err != nil {
			t.Fatal(err)
		}
		want := amb + (start-amb)*math.Exp(-tm/tau)
		if diff := math.Abs(n.Temperature(0) - want); diff > 1e-6 {
			t.Fatalf("cooling t=%.2f: rk4 %.9f vs analytic %.9f (diff %.2e)", tm, n.Temperature(0), want, diff)
		}
	}
}

// The adaptive controller must stay accurate even when handed one huge
// interval: it subdivides by error estimate, not by the caller.
func TestAdaptiveRK4AccurateOnLargeInterval(t *testing.T) {
	const (
		r, c, p, amb = 25.0, 0.04, 0.5, 25.0
		tau          = r * c
		tEnd         = 3.0
	)
	n := singleNode(t)
	n.SetIntegrator(NewIntegrator(Config{Scheme: RK4Adaptive, Tol: 1e-7}))
	if err := n.Step(tEnd, []float64{p}); err != nil {
		t.Fatal(err)
	}
	want := amb + p*r*(1-math.Exp(-tEnd/tau))
	if diff := math.Abs(n.Temperature(0) - want); diff > 1e-3 {
		t.Fatalf("adaptive after one %gs call: %.6f vs analytic %.6f (diff %.2e)", tEnd, n.Temperature(0), want, diff)
	}
}

// RK4 at its stability-bounded maximum step must converge to the same
// steady state as the linear solve, without oscillating.
func TestRK4StableAtMaxStep(t *testing.T) {
	for _, scheme := range []Scheme{RK4, RK4Adaptive} {
		b := NewBuilder()
		a := b.AddNode("die", 0.01, 0)
		s := b.AddNode("sink", 0.1, 0.05)
		b.Connect(a, s, 0.1)
		n, err := b.Build(25)
		if err != nil {
			t.Fatal(err)
		}
		n.SetIntegrator(NewIntegrator(Config{Scheme: scheme}))
		p := []float64{1, 0}
		want, err := n.SteadyState(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Step(60, p); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if d := math.Abs(n.Temperature(i) - want[i]); d > 0.01 {
				t.Errorf("%v node %d = %g, steady state %g (diff %g)", scheme, i, n.Temperature(i), want[i], d)
			}
			if math.IsNaN(n.Temperature(i)) || n.Temperature(i) > 200 {
				t.Errorf("%v node %d unstable: %g", scheme, i, n.Temperature(i))
			}
		}
	}
}

// On the high-performance package (the paper's fast-dynamics target),
// RK4's wider stability region must cover the 10 ms sensor period in
// strictly fewer substeps than Euler.
func TestRK4FewerStepsPerSensorPeriodHighPerf(t *testing.T) {
	m, err := NewModel(floorplan.Default3Core(), HighPerformance())
	if err != nil {
		t.Fatal(err)
	}
	const sensorPeriod = 10e-3
	net := m.Net
	eulerSteps := net.StepsPerInterval(sensorPeriod) // default integrator
	net.SetIntegrator(NewIntegrator(Config{Scheme: RK4}))
	rk4Steps := net.StepsPerInterval(sensorPeriod)
	if eulerSteps < 2 {
		t.Fatalf("euler takes %d steps per sensor period; stability bound unexpectedly loose", eulerSteps)
	}
	if rk4Steps >= eulerSteps {
		t.Fatalf("rk4 takes %d steps per sensor period, euler %d — no reduction", rk4Steps, eulerSteps)
	}
	t.Logf("high-performance package: euler %d substeps / 10 ms, rk4 %d (%.2fx fewer)",
		eulerSteps, rk4Steps, float64(eulerSteps)/float64(rk4Steps))
}

// Both fixed-step schemes must agree with each other on a multi-node
// network within integration tolerance (cross-validation on the real
// model, where no analytic solution exists).
func TestEulerAndRK4AgreeOnModel(t *testing.T) {
	build := func(scheme Scheme) *Model {
		m, err := NewModel(floorplan.Default3Core(), MobileEmbedded())
		if err != nil {
			t.Fatal(err)
		}
		m.Net.SetIntegrator(NewIntegrator(Config{Scheme: scheme}))
		return m
	}
	me := build(Euler)
	mr := build(RK4)
	power := make([]float64, len(me.FP.Blocks))
	power[0] = 0.5
	power[1] = 0.25
	for i := 0; i < 500; i++ {
		if err := me.Step(10e-3, power); err != nil {
			t.Fatal(err)
		}
		if err := mr.Step(10e-3, power); err != nil {
			t.Fatal(err)
		}
	}
	// The gap is dominated by Euler's first-order truncation error at
	// its stability-limit step; a few millikelvin over a 5 s transient.
	for i := range me.FP.Blocks {
		d := math.Abs(me.BlockTemp(i) - mr.BlockTemp(i))
		if d > 0.01 {
			t.Errorf("block %d: euler %.6f vs rk4 %.6f (diff %.2e)", i, me.BlockTemp(i), mr.BlockTemp(i), d)
		}
	}
}

func TestViewExposesTopology(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode("die", 0.01, 0)
	s := b.AddNode("sink", 0.1, 0.05)
	b.Connect(a, s, 0.1)
	n, err := b.Build(25)
	if err != nil {
		t.Fatal(err)
	}
	v := n.View()
	if v.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", v.NumNodes())
	}
	if v.Capacitance(0) != 0.01 || v.Capacitance(1) != 0.1 {
		t.Errorf("capacitances = %g, %g", v.Capacitance(0), v.Capacitance(1))
	}
	if v.AmbientG(0) != 0 || v.AmbientG(1) != 0.05 {
		t.Errorf("ambientG = %g, %g", v.AmbientG(0), v.AmbientG(1))
	}
	if v.Ambient() != 25 {
		t.Errorf("Ambient = %g", v.Ambient())
	}
	if math.Abs(v.SumG(0)-0.1) > 1e-15 || math.Abs(v.SumG(1)-0.15) > 1e-15 {
		t.Errorf("sumG = %g, %g", v.SumG(0), v.SumG(1))
	}
	nb := v.Neighbors(0)
	if len(nb) != 1 || nb[0].Node != 1 || nb[0].G != 0.1 {
		t.Errorf("Neighbors(0) = %+v", nb)
	}
	if v.EulerMaxStep() != n.MaxStableStep() {
		t.Error("EulerMaxStep != MaxStableStep")
	}
	// Deriv at uniform ambient with no power is identically zero.
	dst := make([]float64, 2)
	v.Deriv([]float64{25, 25}, []float64{0, 0}, dst)
	if dst[0] != 0 || dst[1] != 0 {
		t.Errorf("Deriv at equilibrium = %v", dst)
	}
}

func TestStepsPerInterval(t *testing.T) {
	n := singleNode(t)
	// maxStep = 0.5 * C/sumG = 0.5 s.
	if got := n.StepsPerInterval(1.0); got != 2 {
		t.Errorf("StepsPerInterval(1.0) = %d, want 2", got)
	}
	if got := n.StepsPerInterval(0); got != 0 {
		t.Errorf("StepsPerInterval(0) = %d", got)
	}
	n.SetIntegrator(NewIntegrator(Config{Scheme: RK4}))
	if got := n.StepsPerInterval(1.0); got != 2 {
		// 1.0 / (1.3925 * 0.5) = 1.44 -> 2 steps
		t.Errorf("rk4 StepsPerInterval(1.0) = %d, want 2", got)
	}
	if got := n.StepsPerInterval(2.0); got != 3 {
		// euler would need 4; rk4 needs ceil(2/0.696) = 3
		t.Errorf("rk4 StepsPerInterval(2.0) = %d, want 3", got)
	}
}

func TestSetIntegratorIgnoresNil(t *testing.T) {
	n := singleNode(t)
	n.SetIntegrator(nil)
	if n.Integrator() == nil {
		t.Fatal("nil integrator installed")
	}
	if err := n.Step(0.1, []float64{0}); err != nil {
		t.Fatal(err)
	}
}
