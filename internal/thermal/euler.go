package thermal

// eulerIntegrator is the explicit forward-Euler scheme, the default and
// the reference: its substep loop reproduces the seed Network.Step
// bit-for-bit.
type eulerIntegrator struct {
	dTdt []float64
}

func newEuler() *eulerIntegrator { return &eulerIntegrator{} }

func (e *eulerIntegrator) Name() string { return Euler.String() }

func (e *eulerIntegrator) MaxStep(v View) float64 { return v.EulerMaxStep() }

func (e *eulerIntegrator) Advance(v View, temps []float64, dt float64, power []float64) {
	e.dTdt = growScratch(e.dTdt, v.NumNodes())
	max := v.EulerMaxStep()
	for dt > 0 {
		h := dt
		if h > max {
			h = max
		}
		v.Deriv(temps, power, e.dTdt)
		for i := range temps {
			temps[i] += h * e.dTdt[i]
		}
		dt -= h
	}
}

// growScratch returns buf resized to n, reusing capacity.
func growScratch(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
