package thermal

import (
	"math"
	"sync"
)

// The exact matrix-exponential integrator.
//
// The RC network is linear time-invariant: with the state vector T and
// a constant power injection P over a span of dt seconds,
//
//	dT/dt = H·T + C⁻¹·(P + Gamb·Tamb),   H = C⁻¹·(-G)
//
// has the closed-form solution
//
//	T(dt) = A·T(0) + B·P + b,
//	A = e^{H·dt},  B = (∫₀^dt e^{Hs} ds)·C⁻¹,  b = B·(Gamb·Tamb),
//
// so one dense matvec pair replaces the whole Euler/RK4 substep loop
// with zero truncation error. The topology is immutable after Build, so
// H is assembled once per network; the propagator triple (A, B, b) is
// built per distinct span length by scaling-and-squaring and memoized
// in a small cache keyed by the span's float64 bits — the engine steps
// the thermal model at a fixed sensor period, so the hit rate is
// near-total after the first window.
//
// Dense propagation costs 2n² multiply-adds per span regardless of the
// span length, while substepping costs (substeps × sparse RHS). The
// integrator therefore falls back to explicit Euler (bit-for-bit the
// default scheme) for spans below a crossover where substepping is
// cheaper — short spans on any network, and any span on very large
// networks (manycore tiles) whose mild stiffness needs only a handful
// of sparse substeps.

// expmCacheCap bounds the propagator cache per integrator. Two dense
// n×n matrices per entry make unbounded growth a real memory hazard if
// a caller sweeps span lengths; eviction is FIFO (the steady sensor
// cadence re-primes a evicted span in one build).
const expmCacheCap = 32

// expmSparsePenalty is how much slower one sparse RHS element
// (adjacency chase + capacitance divide) is than one dense propagator
// multiply-add, used by the automatic crossover. Measured ~8-30x on
// amd64; 8 is the conservative end, biasing the crossover toward the
// substepping fallback.
const expmSparsePenalty = 8

// expmTheta is the scaled-step norm bound ‖H·h‖∞ ≤ expmTheta at which
// the Taylor series is evaluated; the remainder after expmMaxTerms
// terms is far below double-precision roundoff.
const expmTheta = 0.25

// expmMaxTerms caps the Taylor series length (convergence at
// ‖X‖ ≤ expmTheta needs ~14 terms for 1e-18; the cap is a backstop).
const expmMaxTerms = 32

// propagator is the memoized exact-step triple for one span length. It
// is immutable once built, so one instance may be shared between
// integrators (and goroutines) via the process-wide build cache.
type propagator struct {
	a []float64 // e^{H·dt}, n×n row-major
	// bt is (∫₀^dt e^{Hs} ds)·C⁻¹ stored TRANSPOSED (column j of B is
	// bt[j*n:(j+1)*n]): the power vector is mostly zeros (only block
	// nodes dissipate), so the hot loop walks B by column over the
	// nonzero power entries only, and the transpose keeps each column
	// contiguous.
	bt []float64
	c  []float64 // constant ambient forcing, length n
}

// expmIntegrator advances the network by exact dense propagation with
// memoized per-span propagators, falling back to explicit Euler below
// the crossover. All scratch is flat and owned by the integrator: the
// steady-state path (cache hit) performs no allocations.
type expmIntegrator struct {
	net *Network // bound network; a different network resets everything
	n   int

	// Assembled once per network.
	h           []float64 // H = C⁻¹·(-G), n×n row-major
	invC        []float64
	gamb        []float64 // AmbientG_i · Tamb
	normH       float64   // ‖H‖∞
	autoMin     int       // auto crossover: use expm at ≥ this many Euler substeps
	minSubsteps int       // Config override (0 = auto)

	cache map[uint64]*propagator
	order []uint64 // insertion order for FIFO eviction
	hits, misses,
	evictions int

	fallback eulerIntegrator

	// Hot-loop scratch (length n).
	y []float64
	// Build scratch (n×n, allocated on first locally-built miss only).
	term, next, prod, phi []float64
}

func newExpm(minSubsteps int) *expmIntegrator {
	return &expmIntegrator{minSubsteps: minSubsteps}
}

func (e *expmIntegrator) Name() string { return Expm.String() }

// MaxStep is unbounded: the propagator is exact for any span length.
// (Spans below the crossover substep via the Euler fallback, but that
// is a cost choice, not a stability bound.)
func (e *expmIntegrator) MaxStep(v View) float64 { return math.Inf(1) }

// bind assembles the dense system matrix and the crossover model for
// the network behind v. Subsequent Advance calls on the same network
// are allocation-free on the cache-hit path.
func (e *expmIntegrator) bind(v View) {
	if e.net == v.n {
		return
	}
	n := v.NumNodes()
	e.net = v.n
	e.n = n
	e.h = make([]float64, n*n)
	e.invC = make([]float64, n)
	e.gamb = make([]float64, n)
	e.y = make([]float64, n)
	e.term, e.next, e.prod = nil, nil, nil
	e.cache = make(map[uint64]*propagator)
	e.order = e.order[:0]
	e.hits, e.misses, e.evictions = 0, 0, 0

	sparseElems := n
	for i := 0; i < n; i++ {
		ci := v.Capacitance(i)
		e.invC[i] = 1 / ci
		e.gamb[i] = v.AmbientG(i) * v.Ambient()
		row := e.h[i*n : (i+1)*n]
		for _, a := range v.Neighbors(i) {
			row[a.Node] = a.G / ci
		}
		row[i] = -v.SumG(i) / ci
		sparseElems += 2 * len(v.Neighbors(i))
	}
	e.normH = 0
	for i := 0; i < n; i++ {
		var s float64
		for _, x := range e.h[i*n : (i+1)*n] {
			s += math.Abs(x)
		}
		if s > e.normH {
			e.normH = s
		}
	}
	// Automatic crossover: dense propagation (2 matvecs, 2·2·n² flops)
	// wins once substeps·(2·sparseElems)·penalty exceeds it, i.e. at
	// substeps ≥ n²/(penalty·sparseElems).
	e.autoMin = int(math.Ceil(float64(n) * float64(n) / (expmSparsePenalty * float64(sparseElems))))
	if e.autoMin < 1 {
		e.autoMin = 1
	}
}

// useExpm decides dense propagation versus the substepping fallback
// for a span of dt seconds on the bound network.
func (e *expmIntegrator) useExpm(dt float64) bool {
	substeps := int(math.Ceil(dt / e.net.maxStep))
	threshold := e.minSubsteps
	if threshold <= 0 {
		threshold = e.autoMin
	}
	return substeps >= threshold
}

func (e *expmIntegrator) Advance(v View, temps []float64, dt float64, power []float64) {
	if dt <= 0 {
		return
	}
	e.bind(v)
	if !e.useExpm(dt) {
		e.fallback.Advance(v, temps, dt, power)
		return
	}
	p := e.propagator(dt)
	n := e.n
	y := e.y
	for i := 0; i < n; i++ {
		ai := p.a[i*n : i*n+n]
		// Four independent accumulator chains hide the FP add latency;
		// the split is fixed, so results are deterministic per scheme.
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+4 <= n; j += 4 {
			s0 += ai[j] * temps[j]
			s1 += ai[j+1] * temps[j+1]
			s2 += ai[j+2] * temps[j+2]
			s3 += ai[j+3] * temps[j+3]
		}
		s := p.c[i] + ((s0 + s1) + (s2 + s3))
		for ; j < n; j++ {
			s += ai[j] * temps[j]
		}
		y[i] = s
	}
	// B·P by columns, visiting only the nodes that dissipate power.
	for j, pj := range power {
		if pj == 0 {
			continue
		}
		btj := p.bt[j*n : j*n+n]
		for i, w := range btj {
			y[i] += w * pj
		}
	}
	copy(temps, y)
}

// propagator returns the memoized (A, B, b) triple for the span,
// building and caching it on first use. Identical span lengths share
// one cached triple, so repeated spans recompute nothing.
func (e *expmIntegrator) propagator(dt float64) *propagator {
	key := math.Float64bits(dt)
	if p, ok := e.cache[key]; ok {
		e.hits++
		return p
	}
	e.misses++
	p := e.sharedOrBuild(dt)
	if len(e.order) >= expmCacheCap {
		delete(e.cache, e.order[0])
		e.order = e.order[:copy(e.order, e.order[1:])]
		e.evictions++
	}
	e.cache[key] = p
	e.order = append(e.order, key)
	return p
}

// The process-wide build cache. Experiment sweeps construct a fresh
// Network (and integrator) per run, but the runs of one sweep share a
// handful of package presets, so the same (H, C, dt) propagator would
// otherwise be rebuilt per run — and a build (n³ matmuls) costs as much
// as hundreds of propagated spans. Entries are keyed by a content hash
// of the full dense system and verified element-for-element on lookup,
// so a hit returns a bit-identical propagator to the one a local build
// would produce. Propagators are immutable after build, making the
// shared instances safe for concurrent runs (the parallel Runner).
const sharedPropCap = 64

type sharedPropEntry struct {
	n             int
	dt            float64
	h, invC, gamb []float64
	p             *propagator
}

var (
	sharedPropMu sync.Mutex
	sharedProps  = map[uint64][]*sharedPropEntry{}
	sharedPropN  int
)

// sharedKey hashes (n, dt, H, C⁻¹, Gamb·Tamb) with FNV-1a.
func (e *expmIntegrator) sharedKey(dt float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(e.n))
	mix(math.Float64bits(dt))
	for _, v := range e.h {
		mix(math.Float64bits(v))
	}
	for _, v := range e.invC {
		mix(math.Float64bits(v))
	}
	for _, v := range e.gamb {
		mix(math.Float64bits(v))
	}
	return h
}

// matches reports whether the entry describes exactly this integrator's
// system and span (guarding against hash collisions).
func (s *sharedPropEntry) matches(e *expmIntegrator, dt float64) bool {
	if s.n != e.n || s.dt != dt {
		return false
	}
	for i, v := range s.h {
		if v != e.h[i] {
			return false
		}
	}
	for i, v := range s.invC {
		if v != e.invC[i] {
			return false
		}
	}
	for i, v := range s.gamb {
		if v != e.gamb[i] {
			return false
		}
	}
	return true
}

// sharedOrBuild returns the propagator for the bound system and span,
// reusing a process-wide cached build when one exists.
func (e *expmIntegrator) sharedOrBuild(dt float64) *propagator {
	key := e.sharedKey(dt)
	sharedPropMu.Lock()
	for _, s := range sharedProps[key] {
		if s.matches(e, dt) {
			sharedPropMu.Unlock()
			return s.p
		}
	}
	sharedPropMu.Unlock()
	p := e.build(dt)
	ent := &sharedPropEntry{
		n: e.n, dt: dt,
		h:    append([]float64(nil), e.h...),
		invC: append([]float64(nil), e.invC...),
		gamb: append([]float64(nil), e.gamb...),
		p:    p,
	}
	sharedPropMu.Lock()
	if sharedPropN >= sharedPropCap {
		// Dense matrices are the dominant memory; rather than track
		// recency, drop everything and let the few live systems
		// re-prime (one build each).
		sharedProps = map[uint64][]*sharedPropEntry{}
		sharedPropN = 0
	}
	sharedProps[key] = append(sharedProps[key], ent)
	sharedPropN++
	sharedPropMu.Unlock()
	return p
}

// build computes the propagator by scaling-and-squaring: the Taylor
// series of the pair (e^{X}, ∫e^{Xs}ds) at a step scaled to
// ‖X‖ ≤ expmTheta, then repeated doubling
//
//	A(2h) = A(h)·A(h),   Φ(2h) = Φ(h) + A(h)·Φ(h)
//
// back to the full span. Φ·C⁻¹ and the ambient forcing are folded in
// at the end.
func (e *expmIntegrator) build(dt float64) *propagator {
	n := e.n
	nn := n * n
	if e.term == nil {
		e.term = make([]float64, nn)
		e.next = make([]float64, nn)
		e.prod = make([]float64, nn)
		e.phi = make([]float64, nn)
	}
	// Scaling: h = dt/2^s with ‖H‖·h ≤ expmTheta.
	s := 0
	for e.normH*math.Ldexp(dt, -s) > expmTheta && s < 200 {
		s++
	}
	h := math.Ldexp(dt, -s)

	a := make([]float64, nn) // accumulates e^{H·h}; escapes into the propagator
	phi := e.phi             // accumulates ∫₀^h e^{Hs} ds; folded into bt below
	term := e.term           // X^k/k! with X = H·h
	for i := range term {
		term[i] = 0
		phi[i] = 0
	}
	for i := 0; i < n; i++ {
		a[i*n+i] = 1
		phi[i*n+i] = h
		term[i*n+i] = 1
	}
	for k := 1; k <= expmMaxTerms; k++ {
		// term ← term·X/k = term·(H·h)/k.
		matmulScaled(e.next, term, e.h, n, h/float64(k))
		term, e.next = e.next, term
		f := h / float64(k+1)
		var maxAbs float64
		for i, t := range term {
			a[i] += t
			phi[i] += t * f
			if t = math.Abs(t); t > maxAbs {
				maxAbs = t
			}
		}
		if maxAbs < 1e-18 {
			break
		}
	}
	e.term = term
	// Doubling back to the full span.
	for ; s > 0; s-- {
		matmulScaled(e.prod, a, phi, n, 1)
		for i := range phi {
			phi[i] += e.prod[i]
		}
		matmulScaled(e.prod, a, a, n, 1)
		a, e.prod = e.prod, a
	}
	// B = Φ·C⁻¹ (scale columns); b = Φ·(C⁻¹·Gamb·Tamb) = B·(Gamb·Tamb).
	// B is stored transposed for the column-walk in Advance.
	for i := 0; i < n; i++ {
		row := phi[i*n : i*n+n]
		for j := 0; j < n; j++ {
			row[j] *= e.invC[j]
		}
	}
	bt := make([]float64, nn)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			bt[j*n+i] = phi[i*n+j]
		}
	}
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		row := phi[i*n : i*n+n]
		var sum float64
		for j := 0; j < n; j++ {
			sum += row[j] * e.gamb[j]
		}
		c[i] = sum
	}
	return &propagator{a: a, bt: bt, c: c}
}

// matmulScaled computes dst = (x·y)·f for n×n row-major matrices.
// dst must not alias x or y. The i-k-j loop order keeps the inner loop
// a contiguous saxpy over y's rows.
func matmulScaled(dst, x, y []float64, n int, f float64) {
	for i := 0; i < n; i++ {
		di := dst[i*n : i*n+n]
		for j := range di {
			di[j] = 0
		}
		xi := x[i*n : i*n+n]
		for k := 0; k < n; k++ {
			v := xi[k]
			if v == 0 {
				continue
			}
			yk := y[k*n : k*n+n]
			for j, w := range yk {
				di[j] += v * w
			}
		}
		for j := range di {
			di[j] *= f
		}
	}
}

// ExpmStats reports the propagator-cache counters of an Expm
// integrator: cache hits, misses (= propagator builds), entries and
// evictions. ok is false when ig is not the expm scheme. Tests use it
// to assert the memo cache is exact (a repeated span length never
// rebuilds); callers can use it to confirm span lengths are repetitive
// enough for the scheme to pay off.
func ExpmStats(ig Integrator) (hits, misses, entries, evictions int, ok bool) {
	e, isExpm := ig.(*expmIntegrator)
	if !isExpm {
		return 0, 0, 0, 0, false
	}
	return e.hits, e.misses, len(e.cache), e.evictions, true
}
