package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"thermbal/internal/provenance"
)

func provOpts() Options {
	o := testOpts()
	o.Version = "thermbal-engine/test"
	return o
}

// fillSealed writes enough records to roll the active segment at
// least once, so some records live under sealed roots.
func fillSealed(t *testing.T, s *Store, n int) map[string][]byte {
	t.Helper()
	want := map[string][]byte{}
	for i := 0; i < n; i++ {
		b := body(i, 200)
		mustPut(t, s, key(i), b)
		want[key(i)] = b
	}
	return want
}

func TestSealOnRotateAndProofs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, provOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := fillSealed(t, s, 20)
	st := s.Stats()
	if st.SealedSegments == 0 || st.Seals == 0 || st.ChainLen != st.SealedSegments {
		t.Fatalf("no seals after rotation: %+v", st)
	}
	if st.SealedRecords+st.UnsealedRecords != 20 {
		t.Fatalf("records unaccounted for: %+v", st)
	}
	if st.ChainHead == "" {
		t.Fatalf("empty chain head with %d sealed roots", st.ChainLen)
	}
	var sealed, unsealed int
	for k, b := range want {
		p, err := s.Proof(k)
		if errors.Is(err, ErrUnsealed) {
			unsealed++
			continue
		}
		if err != nil {
			t.Fatalf("proof %s: %v", k, err)
		}
		sealed++
		if err := p.VerifyBody(b); err != nil {
			t.Fatalf("proof %s does not verify: %v", k, err)
		}
		if p.Leaf.Version != "thermbal-engine/test" {
			t.Fatalf("proof %s carries version %q", k, p.Leaf.Version)
		}
	}
	if sealed != st.SealedRecords || unsealed != st.UnsealedRecords {
		t.Fatalf("proofs: sealed=%d unsealed=%d, stats %+v", sealed, unsealed, st)
	}
	if _, err := s.Proof("no-such-key"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown key: %v", err)
	}
	// Seal forces the tail under a root; every record becomes provable.
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	for k, b := range want {
		p, err := s.Proof(k)
		if err != nil {
			t.Fatalf("proof %s after Seal: %v", k, err)
		}
		if err := p.VerifyBody(b); err != nil {
			t.Fatalf("proof %s after Seal: %v", k, err)
		}
	}
	if rep, err := s.Verify(); err != nil {
		t.Fatalf("Verify on a clean store: %v (%+v)", err, rep)
	}
}

func TestProofsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, provOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := fillSealed(t, s, 15)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	before := map[string]provenance.Proof{}
	for k := range want {
		p, err := s.Proof(k)
		if err != nil {
			t.Fatal(err)
		}
		before[k] = p
	}
	head := s.Stats().ChainHead
	s.Close()

	s2, err := Open(dir, provOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.TaintedSegments != 0 {
		t.Fatalf("clean reopen tainted segments: %+v", st)
	}
	if st.ChainHead != head {
		t.Fatalf("chain head changed across restart: %s → %s", head, st.ChainHead)
	}
	for k, pb := range before {
		p, err := s2.Proof(k)
		if err != nil {
			t.Fatalf("proof %s after reopen: %v", k, err)
		}
		if p.Root != pb.Root || p.Chain != pb.Chain || p.Index != pb.Index {
			t.Fatalf("proof %s changed across restart:\n  %+v\n  %+v", k, pb, p)
		}
		if err := p.VerifyBody(want[k]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVerifyLocalizesCoordinatedTamper(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, provOpts())
	if err != nil {
		t.Fatal(err)
	}
	fillSealed(t, s, 15)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a body byte in the first sealed segment and fix the CRC —
	// the frame stays checksum-valid, only the Merkle layer can tell.
	tamperedKey, err := TamperForTest(dir, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(dir)
	if err == nil {
		t.Fatalf("VerifyDir accepted a tampered store: %+v", rep)
	}
	if len(rep.Bad) == 0 {
		t.Fatal("no bad records reported")
	}
	bad := rep.Bad[0]
	if bad.Segment != 1 || bad.Index != 2 || bad.Key != tamperedKey {
		t.Fatalf("localization wrong: %+v (tampered key %s)", bad, tamperedKey)
	}
	if bad.Reason != "body hash mismatch" {
		t.Fatalf("reason = %q", bad.Reason)
	}

	// Opening the store taints the segment: reads still work (the CRC
	// holds), but proofs from it are refused, and nothing "heals" the
	// mismatch — the evidence stays on disk.
	s2, err := Open(dir, provOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.TaintedSegments != 1 {
		t.Fatalf("tainted segments = %d, want 1", st.TaintedSegments)
	}
	if _, err := s2.Proof(tamperedKey); !errors.Is(err, ErrTainted) {
		t.Fatalf("proof from tainted segment: %v", err)
	}
	if rep, err := s2.Verify(); err == nil {
		t.Fatalf("open-store Verify accepted tamper: %+v", rep)
	}
}

func TestVerifyDirIsReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, provOpts())
	if err != nil {
		t.Fatal(err)
	}
	fillSealed(t, s, 8)
	s.Close()
	// Simulate a torn tail on the active segment.
	ids, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	activePath := filepath.Join(dir, fmt.Sprintf("%08d.seg", ids[len(ids)-1]))
	fi, err := os.Stat(activePath)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(activePath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("torn"))
	f.Close()
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("a torn active tail is a kill signature, not tamper: %v", err)
	}
	if rep.TailTruncated != 4 {
		t.Fatalf("TailTruncated = %d, want 4", rep.TailTruncated)
	}
	fi2, err := os.Stat(activePath)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() != fi.Size()+4 {
		t.Fatalf("VerifyDir modified the segment: %d → %d bytes", fi.Size()+4, fi2.Size())
	}
}

func TestCompactionResealsDeterministically(t *testing.T) {
	// Two stores, same operations: supersessions, journal puts and
	// deletes in a pinned namespace, then compaction. Roots and chains
	// must come out identical, all survivors provable.
	mk := func(dir string) *Store {
		o := provOpts()
		o.Pinned = func(k string) bool { return strings.HasPrefix(k, "job/") }
		s, err := Open(dir, o)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			mustPut(t, s, key(i), body(i, 200))
		}
		for i := 0; i < 6; i++ { // supersede half
			mustPut(t, s, key(i), body(i+1, 220))
		}
		for i := 0; i < 4; i++ {
			mustPut(t, s, fmt.Sprintf("job/%03d", i), []byte(fmt.Sprintf(`{"job":%d}`, i)))
		}
		if err := s.Delete("job/003"); err != nil {
			t.Fatal(err)
		}
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := mk(t.TempDir())
	defer a.Close()
	b := mk(t.TempDir())
	defer b.Close()

	sta, stb := a.Stats(), b.Stats()
	if sta.SealedSegments == 0 {
		t.Fatalf("compaction sealed nothing: %+v", sta)
	}
	if sta.UnsealedRecords != 0 {
		t.Fatalf("compaction left unsealed records: %+v", sta)
	}
	// The chains differ in absolute position only if pre-compaction
	// histories differed — they don't here.
	if sta.ChainLen != stb.ChainLen {
		t.Fatalf("chain lengths differ: %d vs %d", sta.ChainLen, stb.ChainLen)
	}
	for i := 0; i < 12; i++ {
		pa, err := a.Proof(key(i))
		if err != nil {
			t.Fatalf("proof %s after compaction: %v", key(i), err)
		}
		pb, err := b.Proof(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if pa.Root != pb.Root || pa.Leaf.BodySHA256 != pb.Leaf.BodySHA256 {
			t.Fatalf("compaction roots not deterministic for %s", key(i))
		}
		if err := pa.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	// The pinned journal namespace stays provable across the reseal.
	for i := 0; i < 3; i++ {
		jk := fmt.Sprintf("job/%03d", i)
		p, err := a.Proof(jk)
		if err != nil {
			t.Fatalf("journal proof %s: %v", jk, err)
		}
		if err := p.VerifyBody([]byte(fmt.Sprintf(`{"job":%d}`, i))); err != nil {
			t.Fatalf("journal proof %s: %v", jk, err)
		}
	}
	if rep, err := a.Verify(); err != nil {
		t.Fatalf("Verify after compaction: %v (%+v)", err, rep)
	}

	// The rewritten layout survives a restart with proofs intact.
	dirA := a.dir
	a.Close()
	a2, err := Open(dirA, func() Options {
		o := provOpts()
		o.Pinned = func(k string) bool { return strings.HasPrefix(k, "job/") }
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if st := a2.Stats(); st.TaintedSegments != 0 {
		t.Fatalf("reopen after compaction tainted: %+v", st)
	}
	p, err := a2.Proof("job/000")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyBody([]byte(`{"job":0}`)); err != nil {
		t.Fatal(err)
	}
}

func TestRetroSealAdoptsLegacyStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, provOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := fillSealed(t, s, 15)
	s.Close()
	// Erase all provenance state, simulating a store written before
	// the layer existed (legacy kind-0 frames are exercised below).
	os.Remove(provenance.ManifestPath(dir))
	mrks, _ := filepath.Glob(filepath.Join(dir, "*.mrk"))
	for _, m := range mrks {
		os.Remove(m)
	}
	s2, err := Open(dir, provOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.SealedSegments == 0 || st.Seals == 0 {
		t.Fatalf("retro-seal did not run: %+v", st)
	}
	if st.TaintedSegments != 0 {
		t.Fatalf("retro-seal tainted segments: %+v", st)
	}
	for k, b := range want {
		p, err := s2.Proof(k)
		if errors.Is(err, ErrUnsealed) {
			continue // active-tail records stay unsealed, as on any open
		}
		if err != nil {
			t.Fatalf("proof %s after retro-seal: %v", k, err)
		}
		if err := p.VerifyBody(b); err != nil {
			t.Fatal(err)
		}
	}
	if rep, err := s2.Verify(); err != nil {
		t.Fatalf("Verify after retro-seal: %v (%+v)", err, rep)
	}
}

func TestLegacyKind0RecordsReplayAndSeal(t *testing.T) {
	dir := t.TempDir()
	// Hand-write a segment of legacy (unversioned, kind-0) frames, as
	// a pre-provenance store would have left them.
	legacy := frame(recKindPut, key(1), "", []byte("legacy-body-1"))
	legacy = append(legacy, frame(recKindPut, key(2), "", []byte("legacy-body-2"))...)
	if err := os.WriteFile(filepath.Join(dir, "00000001.seg"), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, provOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := mustGet(t, s, key(1)); !bytes.Equal(got, []byte("legacy-body-1")) {
		t.Fatalf("legacy body = %q", got)
	}
	// New writes are versioned; legacy records seal with version "".
	mustPut(t, s, key(3), []byte("new-body"))
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	p1, err := s.Proof(key(1))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Leaf.Version != "" {
		t.Fatalf("legacy record sealed with version %q", p1.Leaf.Version)
	}
	if err := p1.VerifyBody([]byte("legacy-body-1")); err != nil {
		t.Fatal(err)
	}
	p3, err := s.Proof(key(3))
	if err != nil {
		t.Fatal(err)
	}
	if p3.Leaf.Version != "thermbal-engine/test" {
		t.Fatalf("new record version = %q", p3.Leaf.Version)
	}
	if rep, err := s.Verify(); err != nil {
		t.Fatalf("Verify on mixed-kind store: %v (%+v)", err, rep)
	}
}

func TestManifestTruncationBreaksChainVerification(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, provOpts())
	if err != nil {
		t.Fatal(err)
	}
	fillSealed(t, s, 20)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	head := s.Stats().ChainHead
	s.Close()
	// Remove the last manifest line (truncation attack). The remaining
	// chain is internally consistent — only the pinned head gives it
	// away — but the now-unsealed segment must still scan clean and
	// the reported head must differ from the pinned one.
	man, err := provenance.LoadManifest(provenance.ManifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(man) < 2 {
		t.Fatalf("need ≥2 sealed roots, have %d", len(man))
	}
	if err := provenance.WriteManifest(provenance.ManifestPath(dir), man[:len(man)-1], false); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("truncated-but-consistent chain should pass a headless scan: %v", err)
	}
	if rep.ChainHead == head {
		t.Fatal("chain head unchanged after manifest truncation")
	}
}
