package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// testOpts keeps segments tiny so rotation and compaction trigger with
// a handful of records, and skips fsync for speed.
func testOpts() Options {
	return Options{SegmentBytes: 1 << 10, MaxBytes: 1 << 20, NoSync: true}
}

func key(i int) string { return fmt.Sprintf("%064d", i) }

func body(i, n int) []byte {
	return bytes.Repeat([]byte{byte('a' + i%26)}, n)
}

func mustPut(t *testing.T, s *Store, k string, b []byte) {
	t.Helper()
	if err := s.Put(k, b); err != nil {
		t.Fatalf("put %s: %v", k, err)
	}
}

func mustGet(t *testing.T, s *Store, k string) []byte {
	t.Helper()
	b, ok, err := s.Get(k)
	if err != nil || !ok {
		t.Fatalf("get %s: ok=%v err=%v", k, ok, err)
	}
	return b
}

// checkIndexMatches asserts that exactly the records in want are live,
// with byte-identical bodies.
func checkIndexMatches(t *testing.T, s *Store, want map[string][]byte) {
	t.Helper()
	if s.Len() != len(want) {
		t.Errorf("live records = %d, want %d", s.Len(), len(want))
	}
	for k, wb := range want {
		b, ok, err := s.Get(k)
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if !ok {
			t.Errorf("key %s missing after reopen", k)
			continue
		}
		if !bytes.Equal(b, wb) {
			t.Errorf("key %s: body differs after reopen", k)
		}
	}
}

func TestPutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 40; i++ {
		k, b := key(i), body(i, 100+i)
		mustPut(t, s, k, b)
		want[k] = b
	}
	// Overwrite a key and delete another: last record wins, tombstone
	// removes.
	mustPut(t, s, key(3), body(3, 7))
	want[key(3)] = body(3, 7)
	if err := s.Delete(key(5)); err != nil {
		t.Fatal(err)
	}
	delete(want, key(5))
	checkIndexMatches(t, s, want)
	st := s.Stats()
	if st.Segments < 2 {
		t.Errorf("segments = %d, want rotation to have happened (>= 2)", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen: identical live set, no recovery events.
	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	checkIndexMatches(t, s2, want)
	st = s2.Stats()
	if st.TailTruncated != 0 || st.CorruptSegments != 0 {
		t.Errorf("clean reopen reported recovery: %+v", st)
	}
}

// TestReopenAfterKill reopens without Close — the file state a SIGKILL
// leaves behind — and expects every completed append to survive.
func TestReopenAfterKill(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]byte{}
	for i := 0; i < 25; i++ {
		k, b := key(i), body(i, 200)
		mustPut(t, s, k, b)
		want[k] = b
	}
	// No Close, no Sync: the open handles are simply abandoned.
	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	checkIndexMatches(t, s2, want)

	// The reopened store must keep appending cleanly.
	mustPut(t, s2, key(100), body(1, 64))
	want[key(100)] = body(1, 64)
	checkIndexMatches(t, s2, want)
}

// activeSegment returns the path of the highest-numbered segment file.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("glob segments: %v (%d files)", err, len(names))
	}
	return names[len(names)-1]
}

// TestTruncatedFinalRecordRecovers cuts the active segment mid-record
// (a kill in the middle of an append) at every byte boundary of the
// final frame and expects recovery to drop exactly that record.
func TestTruncatedFinalRecordRecovers(t *testing.T) {
	// Sizes chosen so all records land in one segment.
	opts := Options{SegmentBytes: 1 << 20, MaxBytes: 1 << 24, NoSync: true}
	build := func(t *testing.T, dir string) (map[string][]byte, int64) {
		s, err := Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string][]byte{}
		for i := 0; i < 5; i++ {
			k, b := key(i), body(i, 50)
			mustPut(t, s, k, b)
			want[k] = b
		}
		preLast := s.Stats().Bytes
		mustPut(t, s, key(5), body(5, 50))
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return want, preLast
	}
	probe, _ := os.MkdirTemp(t.TempDir(), "probe")
	_, preLast := build(t, probe)
	full, err := os.Stat(activeSegment(t, probe))
	if err != nil {
		t.Fatal(err)
	}
	// Every strictly-partial length of the final record, plus a few in
	// between for speed.
	cuts := []int64{preLast, preLast + 1, preLast + recHeaderLen, full.Size() - 5, full.Size() - 1}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut@%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			want, _ := build(t, dir)
			seg := activeSegment(t, dir)
			if err := os.Truncate(seg, cut); err != nil {
				t.Fatal(err)
			}
			s, err := Open(dir, opts)
			if err != nil {
				t.Fatalf("reopen after truncation at %d: %v", cut, err)
			}
			defer s.Close()
			// The final record is gone; everything before it survives.
			checkIndexMatches(t, s, want)
			if _, ok, _ := s.Get(key(5)); ok {
				t.Error("truncated final record still resolves")
			}
			st := s.Stats()
			if cut > preLast && st.TailTruncated != cut-preLast {
				t.Errorf("tail_truncated = %d, want %d", st.TailTruncated, cut-preLast)
			}
			// The repaired store appends cleanly on the truncated
			// boundary and the new record survives another reopen.
			mustPut(t, s, key(5), body(5, 50))
			want[key(5)] = body(5, 50)
			s.Close()
			s2, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			checkIndexMatches(t, s2, want)
			if st := s2.Stats(); st.TailTruncated != 0 {
				t.Errorf("second reopen still truncating: %+v", st)
			}
		})
	}
}

// TestCorruptedCRCMidSegment flips a byte in the middle of a sealed
// segment: replay of that segment stops at the corrupt record, records
// before it and in other segments survive, and the index matches
// exactly the surviving set.
func TestCorruptedCRCMidSegment(t *testing.T) {
	dir := t.TempDir()
	// Big bodies + small segment bound: each segment holds ~3 records.
	opts := Options{SegmentBytes: 1 << 10, MaxBytes: 1 << 24, NoSync: true}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	bodies := map[string][]byte{}
	for i := 0; i < 12; i++ {
		k, b := key(i), body(i, 300)
		mustPut(t, s, k, b)
		bodies[k] = b
	}
	if st := s.Stats(); st.Segments < 3 {
		t.Fatalf("segments = %d, want >= 3", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt one byte inside the *body* of the second record of the
	// first (sealed) segment. Record 0 and every later segment's
	// records must survive; records 1 and 2 (same segment, at and past
	// the corruption) are dropped.
	names, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	seg0 := names[0]
	raw, err := os.ReadFile(seg0)
	if err != nil {
		t.Fatal(err)
	}
	recSize := recHeaderLen + 64 + 300 + 4
	corruptAt := recSize + recHeaderLen + 64 + 10 // 10 bytes into record 1's body
	raw[corruptAt] ^= 0xff
	if err := os.WriteFile(seg0, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("reopen after corruption: %v", err)
	}
	defer s2.Close()
	perSeg := len(raw) / recSize
	want := map[string][]byte{key(0): bodies[key(0)]}
	for i := perSeg; i < 12; i++ {
		want[key(i)] = bodies[key(i)]
	}
	checkIndexMatches(t, s2, want)
	for i := 1; i < perSeg; i++ {
		if _, ok, _ := s2.Get(key(i)); ok {
			t.Errorf("record %d past the corruption still resolves", i)
		}
	}
	st := s2.Stats()
	if st.CorruptSegments != 1 {
		t.Errorf("corrupt_segments = %d, want exactly 1", st.CorruptSegments)
	}
	if st.TailTruncated != 0 {
		t.Errorf("sealed-segment corruption must not truncate: %+v", st)
	}
}

// TestCompactionDropsSupersededAndEvictsOldest drives the log over its
// size budget and checks compaction keeps the newest records, drops
// superseded versions, and never evicts pinned keys.
func TestCompactionDropsSupersededAndEvictsOldest(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		SegmentBytes: 2 << 10,
		MaxBytes:     8 << 10,
		NoSync:       true,
		Pinned:       func(k string) bool { return k == "pin" },
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("pin", []byte("journal")); err != nil {
		t.Fatal(err)
	}
	// Phase 1 — rewrite one key many times: the log overflows with
	// superseded versions and compaction must collapse them without
	// evicting anything live.
	for i := 0; i < 60; i++ {
		mustPut(t, s, "hot", body(i, 400))
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction ever triggered by superseded records")
	}
	if st.Evicted != 0 {
		t.Errorf("compacting superseded records evicted %d live ones", st.Evicted)
	}
	if got := mustGet(t, s, "hot"); !bytes.Equal(got, body(59, 400)) {
		t.Error("hot key not at its newest version after compaction")
	}

	// Phase 2 — distinct keys until the live set itself exceeds the
	// budget: the oldest unpinned records go, newest and pinned stay.
	for i := 0; i < 60; i++ {
		mustPut(t, s, key(i), body(i, 400))
	}
	st = s.Stats()
	if st.Bytes > opts.MaxBytes+(2<<10) {
		t.Errorf("log size %d stayed far over budget %d", st.Bytes, opts.MaxBytes)
	}
	if st.Evicted == 0 {
		t.Error("no eviction under a log full of distinct keys")
	}
	if got := mustGet(t, s, "pin"); !bytes.Equal(got, []byte("journal")) {
		t.Error("pinned key lost or corrupted by compaction")
	}
	if got := mustGet(t, s, key(59)); !bytes.Equal(got, body(59, 400)) {
		t.Error("newest key lost by compaction")
	}
	if _, ok, _ := s.Get(key(0)); ok {
		t.Error("oldest key survived eviction while over budget")
	}

	// Everything still holds after a reopen of the compacted layout.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := mustGet(t, s2, "pin"); !bytes.Equal(got, []byte("journal")) {
		t.Error("pinned key lost across reopen")
	}
	if got := mustGet(t, s2, key(59)); !bytes.Equal(got, body(59, 400)) {
		t.Error("newest key lost across reopen")
	}
}

// TestKeysPrefixAndLen covers the journal-scan helper.
func TestKeysPrefixAndLen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustPut(t, s, "job/run/a", []byte("1"))
	mustPut(t, s, "job/matrix/b", []byte("2"))
	mustPut(t, s, key(1), body(1, 10))
	got := s.Keys("job/")
	if len(got) != 2 || got[0] != "job/matrix/b" || got[1] != "job/run/a" {
		t.Errorf("Keys(job/) = %v", got)
	}
	if n := len(s.Keys("")); n != 3 || s.Len() != 3 {
		t.Errorf("all keys = %d, len = %d, want 3", n, s.Len())
	}
}
