package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"thermbal/internal/provenance"
)

// BadRecord localizes one verification failure.
type BadRecord struct {
	Segment uint64 `json:"segment"`
	// Index is the record's position within its segment, -1 when the
	// failure cannot be pinned to one record (for example a root
	// mismatch with no trustworthy sidecar to diff against).
	Index  int    `json:"index"`
	Offset int64  `json:"offset,omitempty"`
	Key    string `json:"key,omitempty"`
	Reason string `json:"reason"`
}

func (b BadRecord) String() string {
	loc := fmt.Sprintf("segment %08d", b.Segment)
	if b.Index >= 0 {
		loc += fmt.Sprintf(" record %d", b.Index)
	}
	if b.Key != "" {
		loc += fmt.Sprintf(" (key %s)", b.Key)
	}
	return loc + ": " + b.Reason
}

// VerifyReport is the result of a full provenance scan: every record
// of every segment re-read and re-hashed, every sealed root and chain
// link recomputed from the raw bytes.
type VerifyReport struct {
	Segments        int         `json:"segments"`
	SealedSegments  int         `json:"sealed_segments"`
	Records         int         `json:"records"`
	SealedRecords   int         `json:"sealed_records"`
	UnsealedRecords int         `json:"unsealed_records"`
	ChainLen        int         `json:"chain_len"`
	ChainHead       string      `json:"chain_head,omitempty"`
	TailTruncated   int64       `json:"tail_truncated,omitempty"`
	Bad             []BadRecord `json:"bad,omitempty"`
}

// Err returns nil when the scan found nothing wrong, else an error
// naming the first localized failure.
func (r VerifyReport) Err() error {
	if len(r.Bad) == 0 {
		return nil
	}
	return fmt.Errorf("store: verification failed: %s", r.Bad[0])
}

// VerifyDir verifies a store directory offline: no server, no open
// Store, strictly read-only (it never truncates a torn tail or
// creates segments, unlike Open). The returned error is rep.Err() —
// non-nil exactly when something did not check out.
func VerifyDir(dir string) (VerifyReport, error) {
	var rep VerifyReport
	// A missing directory must be an error, not an empty-store pass: a
	// typo'd path would otherwise "verify" vacuously.
	fi, err := os.Stat(dir)
	if err != nil {
		return rep, fmt.Errorf("store: %w", err)
	}
	if !fi.IsDir() {
		return rep, fmt.Errorf("store: %s is not a directory", dir)
	}
	ids, err := listSegments(dir)
	if err != nil {
		return rep, err
	}
	man, err := provenance.LoadManifest(provenance.ManifestPath(dir))
	if err != nil {
		return rep, err
	}
	rep.Segments = len(ids)
	if bad := provenance.VerifyChain(man); bad != -1 {
		rep.Bad = append(rep.Bad, BadRecord{
			Segment: man[bad].Segment, Index: -1,
			Reason: fmt.Sprintf("manifest chain inconsistent at pos %d", man[bad].ChainPos),
		})
		man = man[:bad]
	}
	if len(man) > 0 {
		rep.ChainLen = man[len(man)-1].ChainPos + 1
		rep.ChainHead = man[len(man)-1].Chain
	}
	onDisk := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		onDisk[id] = true
	}
	sealedSet := make(map[uint64]provenance.SealedRoot, len(man))
	for _, e := range man {
		sealedSet[e.Segment] = e
		if !onDisk[e.Segment] {
			rep.Bad = append(rep.Bad, BadRecord{
				Segment: e.Segment, Index: -1,
				Reason: fmt.Sprintf("sealed segment file missing (chain pos %d)", e.ChainPos),
			})
		}
	}
	var activeID uint64
	if len(ids) > 0 {
		activeID = ids[len(ids)-1]
	}
	for _, id := range ids {
		f, err := os.Open(filepath.Join(dir, fmt.Sprintf("%08d.seg", id)))
		if err != nil {
			return rep, fmt.Errorf("store: %w", err)
		}
		var (
			leaves []provenance.Leaf
			offs   []int64
		)
		valid, scanErr := scanSegment(bufio.NewReaderSize(f, 1<<20), func(rec scanned) {
			l := provenance.Leaf{Key: rec.key}
			if rec.kind == recKindDel {
				l.Deleted = true
			} else {
				l.BodyHash = rec.bodyHash
				l.Version = rec.ver
			}
			leaves = append(leaves, l)
			offs = append(offs, rec.off)
		})
		fi, statErr := f.Stat()
		f.Close()
		if scanErr != nil {
			return rep, scanErr
		}
		if statErr != nil {
			return rep, fmt.Errorf("store: %w", statErr)
		}
		size := fi.Size()
		rep.Records += len(leaves)
		e, sealed := sealedSet[id]
		if !sealed {
			rep.UnsealedRecords += len(leaves)
			if valid < size {
				if id == activeID {
					// A torn tail on the segment that was being appended
					// to is the normal kill signature, not tampering.
					rep.TailTruncated += size - valid
				} else {
					rep.Bad = append(rep.Bad, BadRecord{
						Segment: id, Index: len(leaves), Offset: valid,
						Reason: "corrupt frame in an unsealed segment",
					})
				}
			}
			continue
		}
		rep.SealedSegments++
		rep.SealedRecords += len(leaves)
		rep.Bad = append(rep.Bad, verifySealed(dir, id, e, leaves, offs, valid, size)...)
	}
	return rep, rep.Err()
}

// verifySealed checks one sealed segment's scanned leaves against its
// manifest entry, using the sidecar — when it is itself consistent
// with the sealed root — to localize the first divergent record.
func verifySealed(dir string, id uint64, e provenance.SealedRoot, leaves []provenance.Leaf, offs []int64, valid, size int64) []BadRecord {
	scanShort := valid < size
	if !scanShort && len(leaves) == e.Leaves &&
		provenance.EncodeHash(provenance.RootOf(leaves)) == e.Root {
		return nil
	}
	sc, ok, err := provenance.LoadSidecar(dir, id)
	if err == nil && ok && sc.Root == e.Root && len(sc.Leaves) == e.Leaves {
		for i, pl := range sc.Leaves {
			want, err := provenance.SidecarLeaf(pl)
			if err != nil {
				break // sidecar garbled; fall through to the coarse report
			}
			if i >= len(leaves) {
				return []BadRecord{{
					Segment: id, Index: i, Offset: valid, Key: pl.Key,
					Reason: "record unreadable (scan stopped at a corrupt frame)",
				}}
			}
			if leaves[i].Hash() != want.Hash() {
				reason := "leaf mismatch"
				switch {
				case leaves[i].Key != want.Key:
					reason = "key mismatch"
				case leaves[i].BodyHash != want.BodyHash:
					reason = "body hash mismatch"
				case leaves[i].Version != want.Version:
					reason = "engine version mismatch"
				case leaves[i].Deleted != want.Deleted:
					reason = "record kind mismatch"
				}
				return []BadRecord{{Segment: id, Index: i, Offset: offs[i], Key: want.Key, Reason: reason}}
			}
		}
		if len(leaves) > e.Leaves {
			return []BadRecord{{
				Segment: id, Index: e.Leaves, Offset: offs[e.Leaves], Key: leaves[e.Leaves].Key,
				Reason: "records appended after the segment was sealed",
			}}
		}
	}
	reason := "recomputed root does not match the sealed root (no trustworthy sidecar to localize with)"
	if scanShort {
		reason = "corrupt frame inside a sealed segment"
	}
	return []BadRecord{{Segment: id, Index: -1, Offset: valid, Reason: reason}}
}

// Verify re-reads and re-hashes the whole store under the lock,
// recomputing every leaf, root and chain link from the raw segment
// bytes and localizing the first record that no longer matches what
// was sealed. It pauses reads and writes for the scan's duration.
func (s *Store) Verify() (VerifyReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return VerifyReport{}, fmt.Errorf("store: closed")
	}
	return VerifyDir(s.dir)
}

// TamperForTest rewrites one byte in the body of the index'th record
// of a segment and fixes the frame CRC to match — a coordinated
// tamper that per-record checksums cannot catch, which is exactly the
// class of damage the Merkle layer exists to detect. It returns the
// tampered record's key. The store must not be open. Verification
// tests and the smoke harness are the only intended callers.
func TamperForTest(dir string, segID uint64, index int) (string, error) {
	path := filepath.Join(dir, fmt.Sprintf("%08d.seg", segID))
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	off, n := 0, 0
	for {
		if off+recHeaderLen > len(data) {
			return "", fmt.Errorf("store: segment %08d has no record %d", segID, index)
		}
		keyLen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		valLen := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		kind := data[off+8]
		size := recHeaderLen + keyLen + valLen + 4
		if off+size > len(data) {
			return "", fmt.Errorf("store: segment %08d truncated before record %d", segID, index)
		}
		if n == index {
			bodyStart := off + recHeaderLen + keyLen
			if kind == recKindPutV {
				bodyStart += 1 + int(data[bodyStart])
			}
			if kind == recKindDel || bodyStart >= off+size-4 {
				return "", fmt.Errorf("store: record %d of segment %08d has no body to tamper", index, segID)
			}
			data[bodyStart] ^= 0x01
			crc := crc32.Checksum(data[off:off+size-4], crcTable)
			binary.LittleEndian.PutUint32(data[off+size-4:off+size], crc)
			key := string(data[off+recHeaderLen : off+recHeaderLen+keyLen])
			return key, os.WriteFile(path, data, 0o644)
		}
		off += size
		n++
	}
}
