package store

import (
	"errors"
	"fmt"

	"thermbal/internal/provenance"
)

// Sentinel errors for proof requests, so callers can map them onto
// distinct responses.
var (
	// ErrNotFound: no live record under the key.
	ErrNotFound = errors.New("store: key not found")
	// ErrUnsealed: the record lives in the active segment, whose root
	// does not exist yet (rotation or Seal will create it).
	ErrUnsealed = errors.New("store: record not sealed yet")
	// ErrTainted: the record's segment failed seal reconciliation on
	// Open — its recomputed root no longer matches the manifest.
	ErrTainted = errors.New("store: segment failed provenance verification")
)

// sealLocked computes segment id's Merkle root, links it onto the
// chain and makes both durable: the full leaf listing into the
// segment's sidecar, the root + chain link appended to the manifest.
// Already-sealed, corrupt and empty segments are skipped. Callers
// hold s.mu.
func (s *Store) sealLocked(id uint64) error {
	sp := s.prov[id]
	if sp == nil || sp.sealed || sp.corrupt || len(sp.leaves) == 0 {
		return nil
	}
	root := provenance.RootOf(sp.leaves)
	entry := provenance.SealedRoot{
		ChainPos:  s.chainLen,
		Segment:   id,
		Leaves:    len(sp.leaves),
		Root:      provenance.EncodeHash(root),
		PrevChain: provenance.EncodeHash(s.chainTail),
		Chain:     provenance.EncodeHash(provenance.ChainHash(s.chainTail, root)),
		Version:   s.opts.Version,
	}
	sc := provenance.Sidecar{Segment: id, Root: entry.Root}
	for _, l := range sp.leaves {
		sc.Leaves = append(sc.Leaves, provenance.WireLeaf(l))
	}
	if err := provenance.WriteSidecar(s.dir, sc, !s.opts.NoSync); err != nil {
		return err
	}
	if err := provenance.AppendRoot(provenance.ManifestPath(s.dir), entry, !s.opts.NoSync); err != nil {
		return err
	}
	sp.sealed, sp.root, sp.entry = true, root, entry
	s.manifest = append(s.manifest, entry)
	s.chainTail = provenance.ChainHash(s.chainTail, root)
	s.chainLen = entry.ChainPos + 1
	s.stats.Seals++
	return nil
}

// loadProvenance reconciles the manifest against the replayed
// segments at Open time. Sealed segments whose recomputed root
// matches keep serving proofs; mismatches are tainted, never healed —
// rewriting a root would erase exactly the evidence the chain exists
// to preserve. Unsealed non-active segments (pre-provenance stores,
// or a seal that failed to become durable) are retro-sealed, which
// also adopts whole legacy stores on first contact.
func (s *Store) loadProvenance() error {
	man, err := provenance.LoadManifest(provenance.ManifestPath(s.dir))
	if err != nil {
		return err
	}
	// Entries past an internal chain break cannot be trusted: without
	// a consistent predecessor their link values prove nothing. Taint
	// their segments and carry the chain only up to the break.
	if bad := provenance.VerifyChain(man); bad != -1 {
		for _, e := range man[bad:] {
			if sp := s.prov[e.Segment]; sp != nil {
				sp.tainted = fmt.Sprintf("manifest chain broken at pos %d", man[bad].ChainPos)
			}
		}
		man = man[:bad]
	}
	activeID := s.segIDs[len(s.segIDs)-1]
	for _, e := range man {
		sp := s.prov[e.Segment]
		if sp == nil {
			// The sealed segment file itself is gone; the chain still
			// carries its root. Verify reports it, proofs for it are
			// impossible anyway (no records survive to serve).
			continue
		}
		root := provenance.RootOf(sp.leaves)
		sp.sealed, sp.entry = true, e
		if sp.corrupt || len(sp.leaves) != e.Leaves || provenance.EncodeHash(root) != e.Root {
			sp.tainted = fmt.Sprintf("recomputed root over %d records does not match the sealed root at chain pos %d",
				len(sp.leaves), e.ChainPos)
			continue
		}
		sp.root = root
	}
	s.manifest = man
	if len(man) > 0 {
		last := man[len(man)-1]
		s.chainLen = last.ChainPos + 1
		tail, err := provenance.DecodeHash(last.Chain)
		if err != nil {
			return fmt.Errorf("store: manifest chain head: %w", err)
		}
		s.chainTail = tail
	}
	// A crash between sealing and creating the successor segment
	// leaves the sealed segment as the highest-numbered one; appending
	// to it would break its root, so start a fresh active segment.
	if sp := s.prov[activeID]; sp.sealed {
		if err := s.newSegment(activeID + 1); err != nil {
			return err
		}
	}
	for _, id := range s.segIDs[:len(s.segIDs)-1] {
		if err := s.sealLocked(id); err != nil {
			s.stats.SealErrors++
		}
	}
	return nil
}

// Proof builds the inclusion proof for the live record under key: its
// leaf, position and sibling path in the sealed segment's tree, plus
// the sealed root's chain link. Records still in the active segment
// have no root yet and return ErrUnsealed.
func (s *Store) Proof(key string) (provenance.Proof, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var p provenance.Proof
	if s.closed {
		return p, fmt.Errorf("store: closed")
	}
	loc, ok := s.index[key]
	if !ok {
		return p, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	sp := s.prov[loc.seg]
	if !sp.sealed {
		return p, fmt.Errorf("%w: %s lives in the active segment", ErrUnsealed, key)
	}
	if sp.tainted != "" {
		return p, fmt.Errorf("%w: segment %08d: %s", ErrTainted, loc.seg, sp.tainted)
	}
	sibs, err := provenance.BuildProof(sp.leaves, loc.leafIdx)
	if err != nil {
		return p, err
	}
	p = provenance.Proof{
		Leaf:      provenance.WireLeaf(sp.leaves[loc.leafIdx]),
		Index:     loc.leafIdx,
		TreeSize:  len(sp.leaves),
		Siblings:  make([]string, 0, len(sibs)),
		Root:      sp.entry.Root,
		Segment:   loc.seg,
		ChainPos:  sp.entry.ChainPos,
		PrevChain: sp.entry.PrevChain,
		Chain:     sp.entry.Chain,
	}
	for _, h := range sibs {
		p.Siblings = append(p.Siblings, provenance.EncodeHash(h))
	}
	return p, nil
}

// Seal rotates the active segment so everything written so far comes
// under a sealed root (rotation does this automatically at the size
// threshold; Seal forces it — shutdown hooks and tests). An empty
// active segment is a no-op.
func (s *Store) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.active().size == 0 {
		return nil
	}
	return s.rotateLocked()
}
