// Package store is a durable, content-addressed result store: an
// append-only log of (key, body) documents on local disk, designed to
// sit underneath the service's in-memory LRU so simulation results
// survive process restarts.
//
// Layout: a data directory holds numbered segment files
// (00000001.seg, 00000002.seg, ...). Writes always append CRC-framed
// records to the highest-numbered (active) segment; when the active
// segment exceeds the rotation size a new one is started. The full
// key → location index lives in memory and is rebuilt on Open by
// scanning every segment in order, newest record per key winning.
// There is no in-place mutation anywhere, which is what makes recovery
// simple: after a kill, the only possible damage is a partial record
// at the tail of the active segment, and Open truncates it away. A
// corrupted record in the middle of a segment (bit rot, torn sector)
// fails its CRC; scanning of that segment stops there and every record
// up to the corruption survives.
//
// The store is content-addressed in the same sense as the service
// cache: callers derive keys from the canonical request (the
// thermbal/run/v1 SHA-256 scheme), so equal keys always carry equal
// bodies and re-putting a key is idempotent. A small mutable namespace
// (the service's job journal) is supported through Delete, which
// appends a tombstone record; compaction drops superseded records and
// tombstones, and — when the live set still exceeds the size budget —
// evicts the oldest unpinned records, oldest-write-first.
//
// On top of the CRC frames (which catch accidental damage) sits a
// provenance layer that catches deliberate damage: every record is a
// Merkle leaf, every segment gets a root when it is sealed (rotation,
// compaction, or Seal), and sealed roots are hash-chained into
// manifest.prov — see package provenance. Proof serves per-record
// inclusion proofs, Verify / VerifyDir re-derive everything from the
// raw bytes and localize the first divergence.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"thermbal/internal/provenance"
)

// Frame layout, little-endian:
//
//	u32 keyLen | u32 bodyLen | u8 kind | key | body | u32 crc
//
// The CRC (Castagnoli) covers everything before it. Length fields are
// validated against hard bounds before any allocation, so a corrupted
// length cannot make recovery allocate gigabytes.
const (
	recHeaderLen = 4 + 4 + 1
	recKindPut   = 0 // legacy put: value is the body alone (read-only)
	recKindDel   = 1
	// recKindPutV is the versioned put written since the provenance
	// layer: value = u8 verLen | version | body, with the header's
	// length field covering the whole value. Legacy kind-0 records
	// replay as version "".
	recKindPutV = 2

	// maxKeyLen bounds record keys (cache keys are 64 hex chars; job
	// journal keys add a short prefix).
	maxKeyLen = 1 << 10
	// maxBodyLen bounds record bodies (encoded result documents are
	// tens of kilobytes; a full-catalogue matrix document is below a
	// megabyte).
	maxBodyLen = 64 << 20
	// maxVerLen bounds the engine-version stamp (one length byte).
	maxVerLen = 255
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options parameterise Open. The zero value is ready to use.
type Options struct {
	// SegmentBytes is the rotation threshold for the active segment
	// (default 8 MiB). A record larger than the threshold still fits:
	// segments are rotated between records, never split across them.
	SegmentBytes int64
	// MaxBytes bounds the total on-disk size; exceeding it triggers a
	// compaction, which first drops superseded records and tombstones
	// and then, if still over budget, evicts the oldest unpinned
	// records (default 256 MiB). Compaction is synchronous: the Put
	// that trips the budget rewrites the live set while holding the
	// store lock, pausing concurrent reads and writes for the duration
	// — size the budget for an acceptable pause (the rewrite streams
	// at disk speed, and a large budget is hit rarely).
	MaxBytes int64
	// Pinned, when non-nil, marks keys that size-eviction must never
	// drop (the service pins its job journal). Pinned records are still
	// rewritten — deduplicated — by compaction.
	Pinned func(key string) bool
	// NoSync skips the fsync on segment rotation and Close. Process
	// kills are always safe either way (appends reach the page cache on
	// write); NoSync trades machine-crash durability for test speed.
	NoSync bool
	// Version is stamped into every record written and carried into
	// its Merkle leaf, so a proof attests which engine produced the
	// body, not just that the bytes are intact. At most 255 bytes.
	Version string
}

func (o Options) fill() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 256 << 20
	}
	return o
}

// Stats is a snapshot of the store's counters; cumulative counters
// reset on Open.
type Stats struct {
	// Segments / Records / Bytes describe the current on-disk state:
	// segment files, live (indexed) records, total log bytes including
	// superseded records awaiting compaction.
	Segments int   `json:"segments"`
	Records  int   `json:"records"`
	Bytes    int64 `json:"bytes"`
	// LiveBytes is the on-disk size of the live records alone.
	LiveBytes int64 `json:"live_bytes"`
	// Gets / Hits / Puts count lookups, successful lookups and appended
	// put records since Open.
	Gets uint64 `json:"gets"`
	Hits uint64 `json:"hits"`
	Puts uint64 `json:"puts"`
	// Compactions counts log rewrites; Evicted counts live records
	// dropped by size-budget eviction across them; CompactErrors counts
	// failed automatic compactions (the triggering Put still succeeded;
	// the rewrite is retried on a later append).
	Compactions   uint64 `json:"compactions"`
	Evicted       uint64 `json:"evicted"`
	CompactErrors uint64 `json:"compact_errors"`
	// TailTruncated counts bytes cut from the active segment's tail on
	// Open (a partial record from a kill mid-append). CorruptSegments
	// counts sealed segments whose replay stopped at a corrupt record
	// on Open: every record from the corruption to that segment's end
	// is unreachable (how many is unknowable — frames cannot be
	// re-synchronized past a bad length field), records before it and
	// in other segments all survive.
	TailTruncated   int64 `json:"tail_truncated"`
	CorruptSegments int   `json:"corrupt_segments"`
	// SealedSegments / SealedRecords count segments under a Merkle
	// root and the records (puts, supersessions and tombstones alike)
	// those roots commit to; UnsealedRecords is the active tail not
	// yet covered by any root. TaintedSegments count segments whose
	// recomputed root no longer matches the manifest — proofs from
	// them are refused until Verify localizes the damage.
	SealedSegments  int `json:"sealed_segments"`
	SealedRecords   int `json:"sealed_records"`
	UnsealedRecords int `json:"unsealed_records"`
	TaintedSegments int `json:"tainted_segments"`
	// ChainLen / ChainHead describe the sealed-root hash chain: its
	// length and latest link value (pin the head out of band to make
	// the whole log tamper-evident, truncation included).
	ChainLen  int    `json:"chain_len"`
	ChainHead string `json:"chain_head,omitempty"`
	// Seals counts sealing events since Open (rotation, compaction and
	// retro-sealing of pre-provenance segments); SealErrors counts
	// seals that failed to become durable (retried on the next Open).
	Seals      uint64 `json:"seals"`
	SealErrors uint64 `json:"seal_errors"`
}

// recordLoc locates one live record inside a segment.
type recordLoc struct {
	seg     uint64
	off     int64 // offset of the frame header
	size    int64 // full frame size
	bodyLen int
	seq     uint64 // global append order, for oldest-first eviction
	ver     string // engine version stamped at write time (interned)
	leafIdx int    // index into the segment's provenance leaves
}

// segment is one open log file.
type segment struct {
	id   uint64
	f    *os.File
	size int64
}

// segProv is one segment's provenance state: its leaves in append
// order, and — once sealed — the root and its manifest entry.
type segProv struct {
	leaves  []provenance.Leaf
	sealed  bool
	root    [provenance.HashSize]byte
	entry   provenance.SealedRoot
	corrupt bool   // replay stopped short of the segment's end
	tainted string // non-empty: why reconciliation rejected the seal
}

// Store is the disk-backed store. All methods are safe for concurrent
// use. A Store assumes it is the only process writing its directory
// (the service owns its data dir); no advisory locking is attempted.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	segs    map[uint64]*segment
	segIDs  []uint64 // sorted ascending; last is the active segment
	index   map[string]recordLoc
	total   int64 // bytes across all segments
	live    int64 // bytes of live records
	nextSeq uint64
	stats   Stats
	closed  bool

	prov      map[uint64]*segProv
	manifest  []provenance.SealedRoot
	chainTail [provenance.HashSize]byte
	chainLen  int
	verCache  map[string]string // interns replayed version stamps
}

// Open opens (or creates) the store rooted at dir, rebuilding the
// in-memory index by scanning every segment. A partial record at the
// tail of the active segment — the signature of a kill mid-append —
// is truncated away; a CRC failure in the middle of a segment drops
// that segment's remaining records but nothing else.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.fill()
	if len(opts.Version) > maxVerLen {
		return nil, fmt.Errorf("store: version stamp of %d bytes exceeds the %d limit", len(opts.Version), maxVerLen)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		segs:     map[uint64]*segment{},
		index:    map[string]recordLoc{},
		prov:     map[uint64]*segProv{},
		verCache: map[string]string{},
	}
	ids, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		active := i == len(ids)-1
		if err := s.openSegment(id, active); err != nil {
			s.closeLocked()
			return nil, err
		}
	}
	if len(s.segIDs) == 0 {
		if err := s.newSegment(1); err != nil {
			return nil, err
		}
	}
	if err := s.loadProvenance(); err != nil {
		s.closeLocked()
		return nil, err
	}
	return s, nil
}

// listSegments returns the segment ids under dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	ids := make([]uint64, 0, len(names))
	for _, name := range names {
		base := strings.TrimSuffix(filepath.Base(name), ".seg")
		id, err := strconv.ParseUint(base, 10, 64)
		if err != nil {
			continue // not ours; leave it alone
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// openSegment opens one existing segment, replays its records into the
// index and repairs the tail when the segment is the active one.
func (s *Store) openSegment(id uint64, active bool) error {
	path := s.segPath(id)
	flags := os.O_RDONLY
	if active {
		flags = os.O_RDWR
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.prov[id] = &segProv{}
	valid, err := s.replay(id, f)
	if err != nil {
		f.Close()
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	if valid < size {
		if active {
			// Partial or corrupt tail on the segment that was being
			// appended to — the normal signature of a kill mid-append:
			// cut it so the next append starts on a clean frame
			// boundary.
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return fmt.Errorf("store: truncate %s: %w", path, err)
			}
			s.stats.TailTruncated += size - valid
			size = valid
		} else {
			// A sealed segment was never half-written, so stopping
			// short of its end means real corruption. It keeps its
			// bytes on disk (rewriting sealed files would violate
			// append-only); the unreachable span is reclaimed at the
			// next compaction.
			s.stats.CorruptSegments++
			s.prov[id].corrupt = true
		}
	}
	seg := &segment{id: id, f: f, size: size}
	s.segs[id] = seg
	s.segIDs = append(s.segIDs, id)
	s.total += size
	return nil
}

// replay scans one segment file from the start, applying every intact
// record to the index and accumulating its provenance leaves. It
// returns the offset just past the last intact record. Records that
// fail validation stop the scan: everything before them survives,
// everything after is unreachable (openSegment classifies the stop as
// tail damage or corruption by whether the segment was the active
// one).
func (s *Store) replay(id uint64, f *os.File) (int64, error) {
	sp := s.prov[id]
	// Buffered: replay touches every record, and two raw syscalls per
	// record would make reopening a full store needlessly slow.
	return scanSegment(bufio.NewReaderSize(f, 1<<20), func(rec scanned) {
		if prev, ok := s.index[rec.key]; ok {
			s.live -= prev.size
		}
		ver := s.internVer(rec.ver)
		switch rec.kind {
		case recKindPut, recKindPutV:
			s.index[rec.key] = recordLoc{
				seg: id, off: rec.off, size: rec.size, bodyLen: rec.bodyLen,
				seq: s.nextSeq, ver: ver, leafIdx: len(sp.leaves),
			}
			s.live += rec.size
			sp.leaves = append(sp.leaves, provenance.Leaf{Key: rec.key, BodyHash: rec.bodyHash, Version: ver})
		case recKindDel:
			delete(s.index, rec.key)
			sp.leaves = append(sp.leaves, provenance.Leaf{Key: rec.key, Deleted: true})
		}
		s.nextSeq++
	})
}

// internVer deduplicates version-stamp strings rebuilt during replay
// (one distinct stamp per engine build, repeated on every record).
func (s *Store) internVer(v string) string {
	if v == "" {
		return ""
	}
	if c, ok := s.verCache[v]; ok {
		return c
	}
	s.verCache[v] = v
	return v
}

// scanned is one intact record decoded by scanSegment.
type scanned struct {
	off      int64
	size     int64
	kind     byte
	key      string
	ver      string
	bodyLen  int
	bodyHash [provenance.HashSize]byte // zero for tombstones
}

// scanSegment reads CRC-framed records from r until EOF or the first
// invalid frame, calling fn for each intact record, and returns the
// offset just past the last intact one. It is the single decoder
// shared by replay and offline verification, so both agree on what a
// valid record is.
func scanSegment(r io.Reader, fn func(rec scanned)) (int64, error) {
	br := &countingReader{r: r}
	var off int64
	header := make([]byte, recHeaderLen)
	for {
		off = br.n
		if _, err := io.ReadFull(br, header); err != nil {
			return off, nil
		}
		keyLen := binary.LittleEndian.Uint32(header[0:4])
		valLen := binary.LittleEndian.Uint32(header[4:8])
		kind := header[8]
		if keyLen == 0 || keyLen > maxKeyLen || valLen > maxBodyLen+maxVerLen+1 ||
			(kind != recKindPut && kind != recKindDel && kind != recKindPutV) {
			return off, nil
		}
		payload := make([]byte, int(keyLen)+int(valLen)+4)
		if _, err := io.ReadFull(br, payload); err != nil {
			return off, nil
		}
		crc := crc32.Checksum(header, crcTable)
		crc = crc32.Update(crc, crcTable, payload[:len(payload)-4])
		if crc != binary.LittleEndian.Uint32(payload[len(payload)-4:]) {
			return off, nil
		}
		rec := scanned{
			off:  off,
			size: int64(recHeaderLen) + int64(len(payload)),
			kind: kind,
			key:  string(payload[:keyLen]),
		}
		val := payload[keyLen : len(payload)-4]
		if kind == recKindPutV {
			if len(val) < 1 || len(val) < 1+int(val[0]) {
				return off, nil
			}
			rec.ver = string(val[1 : 1+int(val[0])])
			val = val[1+int(val[0]):]
		}
		rec.bodyLen = len(val)
		if kind != recKindDel {
			rec.bodyHash = sha256.Sum256(val)
		}
		fn(rec)
	}
}

// countingReader tracks the consumed offset.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (s *Store) segPath(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%08d.seg", id))
}

// newSegment creates and activates segment id. Callers hold s.mu (or
// run before the store is shared).
func (s *Store) newSegment(id uint64) error {
	f, err := os.OpenFile(s.segPath(id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.segs[id] = &segment{id: id, f: f}
	s.segIDs = append(s.segIDs, id)
	s.prov[id] = &segProv{}
	return nil
}

// active returns the append segment. Callers hold s.mu.
func (s *Store) active() *segment { return s.segs[s.segIDs[len(s.segIDs)-1]] }

// frame serializes one record. Puts are written as versioned records
// (kind 2, value = u8 verLen | ver | body); tombstones carry neither
// version nor body.
func frame(kind byte, key, ver string, body []byte) []byte {
	valLen := len(body)
	if kind == recKindPutV {
		valLen += 1 + len(ver)
	}
	buf := make([]byte, recHeaderLen+len(key)+valLen+4)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(valLen))
	buf[8] = kind
	copy(buf[recHeaderLen:], key)
	p := recHeaderLen + len(key)
	if kind == recKindPutV {
		buf[p] = byte(len(ver))
		p++
		copy(buf[p:], ver)
		p += len(ver)
	}
	copy(buf[p:], body)
	crc := crc32.Checksum(buf[:len(buf)-4], crcTable)
	binary.LittleEndian.PutUint32(buf[len(buf)-4:], crc)
	return buf
}

// Get returns a copy of the body stored under key.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, fmt.Errorf("store: closed")
	}
	s.stats.Gets++
	loc, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	seg := s.segs[loc.seg]
	body := make([]byte, loc.bodyLen)
	bodyOff := loc.off + recHeaderLen + (loc.size - recHeaderLen - int64(loc.bodyLen) - 4)
	if _, err := seg.f.ReadAt(body, bodyOff); err != nil {
		return nil, false, fmt.Errorf("store: read %s: %w", s.segPath(loc.seg), err)
	}
	s.stats.Hits++
	return body, true, nil
}

// Put appends a record for key. Re-putting an existing key supersedes
// the old record (equal keys are expected to carry equal bodies for
// content-addressed results; the job journal overwrites freely).
func (s *Store) Put(key string, body []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d out of range", len(key))
	}
	if len(body) > maxBodyLen {
		return fmt.Errorf("store: body of %d bytes exceeds the %d limit", len(body), maxBodyLen)
	}
	return s.append(recKindPutV, key, body)
}

// Delete appends a tombstone for key; a missing key is a no-op (the
// existence check and the tombstone append are one critical section,
// so a Delete can never erase a concurrent Put it did not observe).
func (s *Store) Delete(key string) error {
	return s.append(recKindDel, key, nil)
}

func (s *Store) append(kind byte, key string, body []byte) error {
	buf := frame(kind, key, s.opts.Version, body)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if kind == recKindDel {
		if _, ok := s.index[key]; !ok {
			return nil
		}
	}
	seg := s.active()
	if seg.size > 0 && seg.size+int64(len(buf)) > s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
		seg = s.active()
	}
	if _, err := seg.f.WriteAt(buf, seg.size); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	off := seg.size
	seg.size += int64(len(buf))
	s.total += int64(len(buf))
	if prev, ok := s.index[key]; ok {
		s.live -= prev.size
	}
	sp := s.prov[seg.id]
	switch kind {
	case recKindPutV:
		s.index[key] = recordLoc{
			seg: seg.id, off: off, size: int64(len(buf)), bodyLen: len(body),
			seq: s.nextSeq, ver: s.opts.Version, leafIdx: len(sp.leaves),
		}
		s.live += int64(len(buf))
		s.stats.Puts++
		sp.leaves = append(sp.leaves, provenance.Leaf{
			Key: key, BodyHash: sha256.Sum256(body), Version: s.opts.Version,
		})
	case recKindDel:
		delete(s.index, key)
		sp.leaves = append(sp.leaves, provenance.Leaf{Key: key, Deleted: true})
	}
	s.nextSeq++
	// Pinned-key appends never trigger the rewrite themselves: they are
	// tiny (the service journals jobs under its mutex, and a surprise
	// whole-log rewrite inside that critical section would stall every
	// job API call); the next unpinned append — result bodies, which
	// dominate the log — compacts instead.
	if s.total > s.opts.MaxBytes && (s.opts.Pinned == nil || !s.opts.Pinned(key)) {
		// The append itself succeeded and is durable; a failed rewrite
		// (say ENOSPC while the log is briefly doubled) leaves the old
		// layout fully intact and is retried on a later append, so it
		// is counted, not surfaced as a put failure.
		if err := s.compactLocked(); err != nil {
			s.stats.CompactErrors++
		}
	}
	return nil
}

// rotateLocked seals the active segment — fsync (unless NoSync), then
// Merkle root + chain link into the manifest — and starts the next
// one. A seal that fails to become durable is counted and retried at
// the next Open (retro-seal); it never blocks the append that
// triggered the rotation.
func (s *Store) rotateLocked() error {
	seg := s.active()
	if !s.opts.NoSync {
		if err := seg.f.Sync(); err != nil {
			return fmt.Errorf("store: sync %s: %w", s.segPath(seg.id), err)
		}
	}
	if err := s.sealLocked(seg.id); err != nil {
		s.stats.SealErrors++
	}
	return s.newSegment(seg.id + 1)
}

// compactLocked rewrites the live set into fresh segments, dropping
// superseded records and tombstones. If the live set alone still
// exceeds the size budget, the oldest unpinned records are evicted
// (the store holds cacheable results; losing the oldest is a cache
// eviction, not data loss — any evicted result can be recomputed).
// The rewrite is built entirely on the side and swapped in only once
// every survivor is written: a mid-compaction failure (or kill)
// leaves the current layout fully intact — new segments are numbered
// past every old one, so even a half-written leftover replays behind
// the records it copied. Callers hold s.mu.
func (s *Store) compactLocked() error {
	type liveRec struct {
		key string
		loc recordLoc
	}
	recs := make([]liveRec, 0, len(s.index))
	for k, loc := range s.index {
		recs = append(recs, liveRec{k, loc})
	}
	// Oldest first, by global append order.
	sort.Slice(recs, func(i, j int) bool { return recs[i].loc.seq < recs[j].loc.seq })

	// Evict oldest unpinned records until the live set fits the budget.
	keep := make([]liveRec, 0, len(recs))
	liveBytes := s.live
	evicted := uint64(0)
	for _, r := range recs {
		if liveBytes > s.opts.MaxBytes && (s.opts.Pinned == nil || !s.opts.Pinned(r.key)) {
			liveBytes -= r.loc.size
			evicted++
			continue
		}
		keep = append(keep, r)
	}

	// Write the survivors into fresh segment files on the side.
	var (
		newSegs  = map[uint64]*segment{}
		newIDs   []uint64
		newIndex = make(map[string]recordLoc, len(keep))
		newProv  = map[uint64]*segProv{}
		newTotal int64
	)
	fail := func(err error) error {
		for _, seg := range newSegs {
			seg.f.Close()
			os.Remove(s.segPath(seg.id))
			os.Remove(provenance.SidecarPath(s.dir, seg.id))
		}
		return err
	}
	nextID := s.segIDs[len(s.segIDs)-1] + 1
	openNew := func() (*segment, error) {
		f, err := os.OpenFile(s.segPath(nextID), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: compact: %w", err)
		}
		seg := &segment{id: nextID, f: f}
		newSegs[nextID] = seg
		newIDs = append(newIDs, nextID)
		newProv[nextID] = &segProv{}
		nextID++
		return seg, nil
	}
	var seg *segment
	for _, r := range keep {
		buf := make([]byte, r.loc.size)
		if _, err := s.segs[r.loc.seg].f.ReadAt(buf, r.loc.off); err != nil {
			return fail(fmt.Errorf("store: compact read: %w", err))
		}
		if seg == nil || (seg.size > 0 && seg.size+int64(len(buf)) > s.opts.SegmentBytes) {
			if seg != nil && !s.opts.NoSync {
				if err := seg.f.Sync(); err != nil {
					return fail(fmt.Errorf("store: compact sync: %w", err))
				}
			}
			var err error
			if seg, err = openNew(); err != nil {
				return fail(err)
			}
		}
		if _, err := seg.f.WriteAt(buf, seg.size); err != nil {
			return fail(fmt.Errorf("store: compact write: %w", err))
		}
		sp := newProv[seg.id]
		newIndex[r.key] = recordLoc{
			seg: seg.id, off: seg.size, size: r.loc.size, bodyLen: r.loc.bodyLen,
			seq: r.loc.seq, ver: r.loc.ver, leafIdx: len(sp.leaves),
		}
		// Frames are copied byte-for-byte, so each survivor's leaf —
		// already computed when the record was first written or
		// replayed — carries over unchanged.
		sp.leaves = append(sp.leaves, s.prov[r.loc.seg].leaves[r.loc.leafIdx])
		seg.size += int64(len(buf))
		newTotal += int64(len(buf))
	}
	if seg != nil && !s.opts.NoSync {
		if err := seg.f.Sync(); err != nil {
			return fail(fmt.Errorf("store: compact sync: %w", err))
		}
	}

	// Seal every rewritten segment, carrying the chain across the
	// compaction: entries for the old segments are dropped (their
	// files are about to vanish) but the first new entry's PrevChain
	// is the pre-compaction chain tail, so the chain — and a head
	// value pinned out of band — stays continuous end to end. Roots
	// are deterministic: survivors are written oldest-first with their
	// original leaves, so compacting the same live set always produces
	// the same roots.
	chainTail, chainLen := s.chainTail, s.chainLen
	var entries []provenance.SealedRoot
	for _, id := range newIDs {
		sp := newProv[id]
		if len(sp.leaves) == 0 {
			continue
		}
		root := provenance.RootOf(sp.leaves)
		entry := provenance.SealedRoot{
			ChainPos:  chainLen,
			Segment:   id,
			Leaves:    len(sp.leaves),
			Root:      provenance.EncodeHash(root),
			PrevChain: provenance.EncodeHash(chainTail),
			Chain:     provenance.EncodeHash(provenance.ChainHash(chainTail, root)),
			Version:   s.opts.Version,
		}
		sc := provenance.Sidecar{Segment: id, Root: entry.Root}
		for _, l := range sp.leaves {
			sc.Leaves = append(sc.Leaves, provenance.WireLeaf(l))
		}
		if err := provenance.WriteSidecar(s.dir, sc, !s.opts.NoSync); err != nil {
			return fail(err)
		}
		sp.sealed, sp.root, sp.entry = true, root, entry
		entries = append(entries, entry)
		chainTail = provenance.ChainHash(chainTail, root)
		chainLen = entry.ChainPos + 1
	}
	// Fresh empty active segment: every rewritten segment is sealed,
	// new appends land under the next root.
	if _, err := openNew(); err != nil {
		return fail(err)
	}
	if err := provenance.WriteManifest(provenance.ManifestPath(s.dir), entries, !s.opts.NoSync); err != nil {
		return fail(err)
	}

	// Swap the new layout in and drop the old files. From here the
	// state is already consistent. Removal stops at the first failure
	// rather than skipping past it: tombstones are dropped from the
	// rewrite, so if an old segment holding a Put survived while a
	// newer one holding its Delete were removed, the next Open would
	// resurrect the deleted key. Keeping the contiguous newer suffix
	// keeps every surviving Put's tombstone too, and leftover records
	// replay before — and lose to — the compacted copies.
	oldIDs, oldSegs := s.segIDs, s.segs
	s.segs, s.segIDs = newSegs, newIDs
	s.index = newIndex
	s.prov = newProv
	s.manifest = entries
	s.chainTail, s.chainLen = chainTail, chainLen
	s.total, s.live = newTotal, newTotal
	s.stats.Compactions++
	s.stats.Evicted += evicted
	s.stats.Seals += uint64(len(entries))
	var removeErr error
	for _, id := range oldIDs {
		oldSegs[id].f.Close()
		os.Remove(provenance.SidecarPath(s.dir, id)) // derived data; orphans are ignored anyway
		if removeErr != nil {
			continue
		}
		if err := os.Remove(s.segPath(id)); err != nil {
			removeErr = fmt.Errorf("store: remove %s: %w", s.segPath(id), err)
		}
	}
	return removeErr
}

// Keys returns the live keys with the given prefix, in unspecified
// order ("" returns every key). The service scans its job-journal
// namespace with this on startup.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Segments = len(s.segIDs)
	st.Records = len(s.index)
	st.Bytes = s.total
	st.LiveBytes = s.live
	for _, id := range s.segIDs {
		sp := s.prov[id]
		if sp.sealed {
			st.SealedSegments++
			st.SealedRecords += len(sp.leaves)
		} else {
			st.UnsealedRecords += len(sp.leaves)
		}
		if sp.tainted != "" {
			st.TaintedSegments++
		}
	}
	st.ChainLen = s.chainLen
	if s.chainLen > 0 {
		st.ChainHead = provenance.EncodeHash(s.chainTail)
	}
	return st
}

// Compact forces a log rewrite (normally triggered automatically when
// the log exceeds MaxBytes).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	return s.compactLocked()
}

// Close syncs the active segment (unless NoSync) and closes every
// segment file. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	var err error
	if !s.opts.NoSync {
		err = s.active().f.Sync()
	}
	s.closeLocked()
	return err
}

func (s *Store) closeLocked() {
	for _, seg := range s.segs {
		seg.f.Close()
	}
	s.closed = true
}
