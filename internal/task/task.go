// Package task defines the task model of the streaming MPOS: processes
// characterised by their full-speed-equivalent load (FSE) — the load a
// task imposes when its core runs at the maximum frequency (paper
// Section 3) — plus the memory footprint that determines migration cost.
//
// Tasks are migratable only at checkpoints (frame boundaries); between a
// migration request and the checkpoint the task keeps running, and while
// its state crosses the shared bus it is frozen (paper Section 3.2).
package task

import (
	"errors"
	"fmt"
)

// DefaultStateBytes is the migration payload per task: the paper reports
// each migration transfers 64 KB, the minimum memory space allocated by
// the OS (Section 5.2).
const DefaultStateBytes = 64 << 10

// DefaultCodeBytes is the program image size reloaded from the
// filesystem by the task-recreation mechanism.
const DefaultCodeBytes = 48 << 10

// State is the lifecycle state of a task.
type State int

const (
	// Ready means the task is schedulable on its current core.
	Ready State = iota
	// Frozen means the task is mid-migration: descheduled, context in
	// flight on the shared bus.
	Frozen
)

// String names the state.
func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Frozen:
		return "frozen"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Task is a streaming process. Fields are mutated only by the simulation
// engine and the migration middleware; Task itself carries no locking.
type Task struct {
	// Name identifies the task ("BPF1", "DEMOD", ...).
	Name string
	// FSE is the full-speed-equivalent load in [0,1]: the utilization
	// the task imposes at the maximum core frequency.
	FSE float64
	// StateBytes is the context transferred on migration.
	StateBytes float64
	// CodeBytes is the program image reloaded by task-recreation.
	CodeBytes float64

	// Core is the current placement (0-based core ID).
	Core int
	// State is Ready or Frozen.
	State State

	// CyclesPerFrame is the work per frame, derived from FSE, the
	// maximum frequency and the frame period.
	CyclesPerFrame float64

	// Progress is cycles already spent on the in-flight frame.
	Progress float64
	// InFlight reports whether a frame is currently being processed.
	InFlight bool

	// FramesCompleted counts finished frames.
	FramesCompleted int64
	// BusyCycles accumulates executed cycles.
	BusyCycles float64
	// Migrations counts completed migrations of this task.
	Migrations int
}

// New creates a task with the given FSE load and default memory
// footprint. It returns an error for loads outside (0,1].
func New(name string, fse float64) (*Task, error) {
	if name == "" {
		return nil, errors.New("task: empty name")
	}
	if fse <= 0 || fse > 1 {
		return nil, fmt.Errorf("task %q: FSE %g outside (0,1]", name, fse)
	}
	return &Task{
		Name:       name,
		FSE:        fse,
		StateBytes: DefaultStateBytes,
		CodeBytes:  DefaultCodeBytes,
		Core:       -1,
	}, nil
}

// MustNew is New, panicking on error; for static benchmark definitions.
func MustNew(name string, fse float64) *Task {
	t, err := New(name, fse)
	if err != nil {
		panic(err)
	}
	return t
}

// BindWork derives CyclesPerFrame for the given maximum frequency (Hz)
// and frame period (s): a task with FSE l consumes l*fmax*period cycles
// per frame, so at fmax it occupies exactly fraction l of the core.
func (t *Task) BindWork(fmaxHz, framePeriodS float64) {
	t.CyclesPerFrame = t.FSE * fmaxHz * framePeriodS
}

// Remaining returns cycles left on the in-flight frame (0 when no frame
// is in flight).
func (t *Task) Remaining() float64 {
	if !t.InFlight {
		return 0
	}
	r := t.CyclesPerFrame - t.Progress
	if r < 0 {
		return 0
	}
	return r
}

// Runnable reports whether the scheduler may give the task cycles.
func (t *Task) Runnable() bool { return t.State == Ready }

// Freeze marks the task frozen for migration. It must not be called
// mid-frame; the middleware only freezes at checkpoints.
func (t *Task) Freeze() error {
	if t.InFlight {
		return fmt.Errorf("task %q: freeze mid-frame (checkpoint protocol violated)", t.Name)
	}
	t.State = Frozen
	return nil
}

// Unfreeze returns the task to Ready on the given core (the migration
// destination).
func (t *Task) Unfreeze(core int) {
	t.State = Ready
	t.Core = core
	t.Migrations++
}

// StartFrame begins processing one frame. The caller (engine) must have
// checked firing conditions with the stream graph.
func (t *Task) StartFrame() error {
	if t.InFlight {
		return fmt.Errorf("task %q: StartFrame while a frame is in flight", t.Name)
	}
	if t.State != Ready {
		return fmt.Errorf("task %q: StartFrame in state %v", t.Name, t.State)
	}
	t.InFlight = true
	t.Progress = 0
	return nil
}

// Execute spends up to cycles on the in-flight frame and returns the
// cycles actually consumed and whether the frame completed.
func (t *Task) Execute(cycles float64) (consumed float64, frameDone bool) {
	if !t.InFlight || cycles <= 0 {
		return 0, false
	}
	need := t.CyclesPerFrame - t.Progress
	if cycles >= need {
		t.Progress = t.CyclesPerFrame
		t.BusyCycles += need
		t.InFlight = false
		t.FramesCompleted++
		return need, true
	}
	t.Progress += cycles
	t.BusyCycles += cycles
	return cycles, false
}

// ExecuteSpan spends n whole allocations of budget cycles each on the
// in-flight frame in one batch: Progress and BusyCycles advance by the
// exact product n·budget instead of n sequential additions. The caller
// must have bounded n so the frame cannot complete within the batch
// (the event-horizon fast path does); frameDone reports a bound
// violation — the frame would have finished — and leaves the task
// untouched so the caller can fail loudly.
//
// The batched sum n·budget is the exact value the per-tick loop
// approximates with n rounded additions, so results can differ from
// tick-by-tick execution in the last ULPs. The engine therefore only
// batches under the span-exact accounting mode that accompanies the
// expm thermal scheme; the default Euler configuration keeps the
// sequential path bit-for-bit.
func (t *Task) ExecuteSpan(budget float64, n int64) (consumed float64, frameDone bool) {
	if !t.InFlight || n <= 0 || budget <= 0 {
		return 0, false
	}
	total := budget * float64(n)
	if total >= t.CyclesPerFrame-t.Progress {
		return 0, true
	}
	t.Progress += total
	t.BusyCycles += total
	return total, false
}

// MigrationBytes returns the payload a migration of this task moves for
// the given mechanism: replication transfers the live context only;
// recreation additionally reloads the code image.
func (t *Task) MigrationBytes(recreation bool) float64 {
	if recreation {
		return t.StateBytes + t.CodeBytes
	}
	return t.StateBytes
}

// Clone returns a copy with runtime accounting reset, used when building
// repeated experiments from a template task set.
func (t *Task) Clone() *Task {
	c := *t
	c.Progress = 0
	c.InFlight = false
	c.FramesCompleted = 0
	c.BusyCycles = 0
	c.Migrations = 0
	c.State = Ready
	return &c
}

// TotalFSE sums the FSE loads of the given tasks (helper for DVFS and
// policies).
func TotalFSE(tasks []*Task) float64 {
	var s float64
	for _, t := range tasks {
		s += t.FSE
	}
	return s
}

// OnCore filters tasks placed on the given core.
func OnCore(tasks []*Task, core int) []*Task {
	var out []*Task
	for _, t := range tasks {
		if t.Core == core {
			out = append(out, t)
		}
	}
	return out
}
