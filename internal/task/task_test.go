package task

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("", 0.5); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New("x", 0); err == nil {
		t.Error("zero FSE accepted")
	}
	if _, err := New("x", 1.2); err == nil {
		t.Error("FSE > 1 accepted")
	}
	tk, err := New("x", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Core != -1 {
		t.Errorf("initial core = %d, want -1 (unplaced)", tk.Core)
	}
	if tk.StateBytes != DefaultStateBytes {
		t.Errorf("state bytes = %g", tk.StateBytes)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew("bad", -1)
}

func TestBindWork(t *testing.T) {
	tk := MustNew("BPF2", 0.304)
	tk.BindWork(533e6, 0.02)
	want := 0.304 * 533e6 * 0.02
	if math.Abs(tk.CyclesPerFrame-want) > 1 {
		t.Errorf("CyclesPerFrame = %g, want %g", tk.CyclesPerFrame, want)
	}
}

func TestFrameLifecycle(t *testing.T) {
	tk := MustNew("x", 0.5)
	tk.BindWork(100, 1) // 50 cycles per frame
	if tk.Remaining() != 0 {
		t.Error("Remaining != 0 before frame start")
	}
	if err := tk.StartFrame(); err != nil {
		t.Fatal(err)
	}
	if err := tk.StartFrame(); err == nil {
		t.Error("double StartFrame accepted")
	}
	c, done := tk.Execute(30)
	if c != 30 || done {
		t.Fatalf("Execute(30) = (%g,%v)", c, done)
	}
	if tk.Remaining() != 20 {
		t.Errorf("Remaining = %g, want 20", tk.Remaining())
	}
	c, done = tk.Execute(100)
	if c != 20 || !done {
		t.Fatalf("Execute(100) = (%g,%v), want (20,true)", c, done)
	}
	if tk.FramesCompleted != 1 {
		t.Errorf("FramesCompleted = %d", tk.FramesCompleted)
	}
	if tk.BusyCycles != 50 {
		t.Errorf("BusyCycles = %g", tk.BusyCycles)
	}
	if tk.InFlight {
		t.Error("still in flight after completion")
	}
}

func TestExecuteWithoutFrame(t *testing.T) {
	tk := MustNew("x", 0.5)
	tk.BindWork(100, 1)
	if c, done := tk.Execute(10); c != 0 || done {
		t.Error("Execute without frame consumed cycles")
	}
	tk.StartFrame()
	if c, _ := tk.Execute(-5); c != 0 {
		t.Error("negative cycles consumed")
	}
}

func TestFreezeProtocol(t *testing.T) {
	tk := MustNew("x", 0.5)
	tk.BindWork(100, 1)
	tk.StartFrame()
	if err := tk.Freeze(); err == nil {
		t.Error("mid-frame freeze accepted (checkpoint violation)")
	}
	tk.Execute(1000)
	if err := tk.Freeze(); err != nil {
		t.Fatalf("checkpoint freeze rejected: %v", err)
	}
	if tk.Runnable() {
		t.Error("frozen task runnable")
	}
	if err := tk.StartFrame(); err == nil {
		t.Error("frozen task started a frame")
	}
	tk.Unfreeze(2)
	if !tk.Runnable() || tk.Core != 2 {
		t.Errorf("after unfreeze: state %v, core %d", tk.State, tk.Core)
	}
	if tk.Migrations != 1 {
		t.Errorf("Migrations = %d", tk.Migrations)
	}
}

func TestMigrationBytes(t *testing.T) {
	tk := MustNew("x", 0.5)
	if got := tk.MigrationBytes(false); got != DefaultStateBytes {
		t.Errorf("replication bytes = %g", got)
	}
	if got := tk.MigrationBytes(true); got != DefaultStateBytes+DefaultCodeBytes {
		t.Errorf("recreation bytes = %g", got)
	}
}

func TestClone(t *testing.T) {
	tk := MustNew("x", 0.5)
	tk.BindWork(100, 1)
	tk.StartFrame()
	tk.Execute(1000)
	tk.Core = 2
	c := tk.Clone()
	if c.FramesCompleted != 0 || c.BusyCycles != 0 || c.InFlight || c.Migrations != 0 {
		t.Error("Clone kept runtime accounting")
	}
	if c.Name != "x" || c.FSE != 0.5 || c.Core != 2 || c.CyclesPerFrame != tk.CyclesPerFrame {
		t.Error("Clone lost identity fields")
	}
}

func TestTotalFSEAndOnCore(t *testing.T) {
	a := MustNew("a", 0.3)
	b := MustNew("b", 0.2)
	c := MustNew("c", 0.1)
	a.Core, b.Core, c.Core = 0, 0, 1
	all := []*Task{a, b, c}
	if got := TotalFSE(all); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("TotalFSE = %g", got)
	}
	on0 := OnCore(all, 0)
	if len(on0) != 2 || on0[0] != a || on0[1] != b {
		t.Errorf("OnCore(0) = %v", on0)
	}
	if len(OnCore(all, 5)) != 0 {
		t.Error("OnCore(5) found tasks")
	}
}

func TestStateString(t *testing.T) {
	if Ready.String() != "ready" || Frozen.String() != "frozen" {
		t.Error("state names wrong")
	}
	if State(9).String() != "State(9)" {
		t.Error("unknown state name wrong")
	}
}

// Property: no matter how execution is chunked, total consumed cycles
// per frame equal CyclesPerFrame and completion happens exactly once.
func TestExecuteChunkingProperty(t *testing.T) {
	f := func(chunks []uint16) bool {
		tk := MustNew("p", 0.5)
		tk.BindWork(1e4, 1) // 5000 cycles/frame
		if tk.StartFrame() != nil {
			return false
		}
		var total float64
		completions := 0
		for _, ch := range chunks {
			c, done := tk.Execute(float64(ch))
			total += c
			if done {
				completions++
			}
			if completions > 1 {
				return false
			}
		}
		// Drain to completion.
		for tk.InFlight {
			c, done := tk.Execute(1000)
			total += c
			if done {
				completions++
			}
		}
		return completions == 1 && math.Abs(total-5000) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
